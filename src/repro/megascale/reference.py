"""The per-agent reference machine: the frame kernels, one object at a time.

This is the differential twin of :class:`~repro.megascale.engine.BulkEngine`:
the same scenario semantics -- admission limit, shedding, escalation on
touch, fault promotion, idle demotion, the settlement identity --
implemented over plain Python dicts with an explicit per-object loop and
*no numpy anywhere*.  The property and differential tests drive both
machines with identical seeded inputs and assert the final states,
ledgers, and checksums are equal; the columnar backend is only trusted
where this twin proves it interchangeable.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import LegionError

_CHECKSUM_MOD = 2305843009213693951  # 2**61 - 1, matches StateFrame


@dataclass
class RefObject:
    """One rich-ish object: the per-agent unit of the reference machine."""

    klass: int
    host: int
    state: str = "bulk"  # bulk | promoted
    value: int = 0
    calls: int = 0
    shed: int = 0


@dataclass
class RefLedger:
    """Mirror of :class:`~repro.megascale.engine.EngineLedger`."""

    issued: int = 0
    bulk_completed: int = 0
    escalated_issued: int = 0
    escalated_completed: int = 0
    shed: int = 0
    promotions: int = 0
    demotions: int = 0
    fault_promotions: int = 0
    promoted_by_fault: List[int] = field(default_factory=list)

    def settled(self) -> bool:
        return (
            self.issued
            == self.bulk_completed + self.escalated_completed + self.shed
        )


class ReferenceMachine:
    """Per-agent twin of the columnar engine (see module docstring)."""

    def __init__(
        self,
        n_classes: int,
        n_hosts: int,
        hot_ids=(),
        per_tick_limit: Optional[int] = None,
        demote_after: int = 3,
    ) -> None:
        self.n_classes = n_classes
        self.n_hosts = n_hosts
        self.per_tick_limit = per_tick_limit
        self.demote_after = int(demote_after)
        self.objects: List[RefObject] = []
        self.hot = set(int(i) for i in hot_ids)
        self.host_up = [True] * n_hosts
        self.class_calls = [0] * n_classes
        self.class_sheds = [0] * n_classes
        self.ledger = RefLedger()
        self._twins: Dict[int, int] = {}  # promoted id → twin value
        self._last_touch: Dict[int, int] = {}

    def extend(self, count: int, klass, host) -> List[int]:
        """Allocate rows exactly the way StateFrame.extend does."""
        start = len(self.objects)
        for j in range(count):
            k = klass[j] if hasattr(klass, "__getitem__") else klass
            h = host[j] if hasattr(host, "__getitem__") else host
            self.objects.append(RefObject(klass=int(k), host=int(h)))
        return list(range(start, start + count))

    # ------------------------------------------------------------------ kernels

    def tick(self, tick: int, targets) -> None:
        """One tick: identical semantics, one object at a time."""
        targets = [int(t) for t in targets]
        self.ledger.issued += len(targets)
        # Classification happens against the band state at tick start,
        # exactly like the engine's upfront mask.
        escalated = [
            t for t in targets if t in self.hot or self.objects[t].state != "bulk"
        ]
        bulk = [
            t for t in targets if not (t in self.hot or self.objects[t].state != "bulk")
        ]
        arrivals = Counter(bulk)
        for i, count in sorted(arrivals.items()):
            obj = self.objects[i]
            if self.per_tick_limit is not None:
                served = min(count, self.per_tick_limit)
            else:
                served = count
            shed = count - served
            obj.value += served
            obj.calls += served
            obj.shed += shed
            self.class_calls[obj.klass] += served
            self.class_sheds[obj.klass] += shed
            self.ledger.bulk_completed += served
            self.ledger.shed += shed
        for t in escalated:
            self._escalated_call(t, tick)

    def _escalated_call(self, i: int, tick: int) -> None:
        obj = self.objects[i]
        if obj.state != "promoted":
            self._promote([i], reason="touch")
        self._last_touch[i] = tick
        self.ledger.escalated_issued += 1
        self._twins[i] += 1
        self.ledger.escalated_completed += 1
        self.class_calls[obj.klass] += 1

    # --------------------------------------------------------------- promotion

    def _promote(self, ids: List[int], reason: str) -> None:
        for i in ids:
            obj = self.objects[i]
            if obj.state == "promoted":
                raise LegionError("promote: row already promoted")
            obj.state = "promoted"
            self._twins[i] = obj.value
        self.ledger.promotions += len(ids)
        if reason == "fault":
            self.ledger.fault_promotions += len(ids)
            self.ledger.promoted_by_fault.extend(ids)

    def demote_idle(self, tick: int) -> int:
        idle = sorted(
            i
            for i, last in self._last_touch.items()
            if tick - last >= self.demote_after
        )
        for i in idle:
            self._demote(i)
        return len(idle)

    def demote_all(self) -> int:
        promoted = sorted(self._last_touch)
        for i in promoted:
            self._demote(i)
        return len(promoted)

    def _demote(self, i: int) -> None:
        obj = self.objects[i]
        if not self.host_up[obj.host]:
            obj.host = self._surviving_host()
        obj.value = self._twins.pop(i)
        obj.state = "bulk"
        self._last_touch.pop(i, None)
        self.ledger.demotions += 1

    def _surviving_host(self) -> int:
        for h, up in enumerate(self.host_up):
            if up:
                return h
        raise LegionError("no surviving host to re-home a demoted row")

    # ------------------------------------------------------------------- chaos

    def crash_host(self, host_id: int) -> List[int]:
        affected = sorted(
            i
            for i, obj in enumerate(self.objects)
            if obj.host == host_id and obj.state == "bulk"
        )
        self.host_up[host_id] = False
        if affected:
            self._promote(affected, reason="fault")
            for i in affected:
                self._last_touch.setdefault(i, 0)
        return affected

    def restore_host(self, host_id: int) -> None:
        self.host_up[host_id] = True

    # --------------------------------------------------------------- reporting

    def value_checksum(self) -> int:
        total = 0
        for i, obj in enumerate(self.objects):
            total += obj.value * ((i % 9973) + 1) % _CHECKSUM_MOD
        return total % _CHECKSUM_MOD

    def band_histogram(self) -> Dict[str, int]:
        counts = Counter(obj.state for obj in self.objects)
        return {
            "bulk": counts.get("bulk", 0),
            "promoted": counts.get("promoted", 0),
            "lost": counts.get("lost", 0),
        }

    def settled(self) -> bool:
        return self.ledger.settled()
