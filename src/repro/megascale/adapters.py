"""Mega-scale phases for the experiments (the ``--mega N`` flag).

Three adapters, one per experiment the flag wires into:

* :func:`run_e9_mega_unit` -- one rung of the E9 size ladder: the whole
  population in a :class:`~repro.megascale.frame.StateFrame`, classes and
  host slots scaled proportionally, the standing hot set escalated into a
  real :class:`~repro.system.legion.LegionSystem` through the live
  boundary.  The claim transfers: max per-class load must stay ~flat as
  the population grows 100x.
* :func:`run_mega_autoscale` -- E14 at mega scale: a columnar *caller*
  population whose demand lands on the real CloneController's pool
  counters, with the frame's ``cache_epoch`` column modelling per-caller
  binding-cache staleness (lazy rebind on pool-epoch bumps).
* :func:`run_mega_overload` -- E15 at mega scale: per-host carryover
  queues over the object frame, an admission arm that sheds at the queue
  cap versus a baseline that queues unboundedly and serves late.

Every adapter returns a picklable dict of *deterministic* values (no
wall-clock anywhere), so the sharded runners merge partials into
byte-identical reports at any ``--shards``/``--jobs``.
"""

from __future__ import annotations

from typing import Dict, List

from repro.megascale.compat import require_numpy
from repro.megascale.frame import StateFrame
from repro.megascale.scenario import MegaScenario, run_columnar

#: The E9 mega size ladder: population rungs spanning two decades below
#: the requested scale, so the log-log load fit has range.
LADDER_FLOOR = 10_000


def e9_mega_sizes(mega: int, quick: bool = True) -> List[int]:
    """The population rungs of one E9 mega sweep (sorted, deduplicated)."""
    mega = int(mega)
    floor = min(LADDER_FLOOR, mega)
    return sorted({max(floor, mega // 100), max(floor, mega // 10), mega})


def e9_mega_spec(size: int, quick: bool = True) -> MegaScenario:
    """One rung's scenario: classes, host slots, and traffic all ∝ size.

    Scaling every axis together is the point: per-class offered load is
    then *flat* in the population, so a flat max-class-load curve means
    no component's load is an increasing function of system size -- the
    paper's principle restated at 10^6-10^7 objects.
    """
    return MegaScenario(
        population=size,
        n_classes=max(4, size // 1_000),
        bulk_hosts=max(4, size // 2_000),
        ticks=3 if quick else 5,
        calls_per_tick=max(256, size // 2),
        hot=4,
        touches_per_tick=2,
        demote_after=2,
    )


def run_e9_mega_unit(size: int, seed: int, quick: bool = True) -> Dict:
    """Run one ladder rung; returns the deterministic partial."""
    out = run_columnar(e9_mega_spec(size, quick), seed=seed)
    report, diag = out.report, out.diagnostics
    return {
        "size": size,
        "n_classes": e9_mega_spec(size, quick).n_classes,
        "issued": report.issued,
        "completed": report.completed,
        "shed": report.shed,
        "max_class_load": max(report.class_calls),
        "checksum": report.value_checksum,
        "settled": report.settled,
        "wire_settled": report.wire_settled,
        "promotions": diag["promotions"],
        "demotions": diag["demotions"],
        "allocator_high_water": diag["allocator_high_water"],
        "sim_clock": out.sim_clock,
        "sim_events": out.sim_events,
    }


# ----------------------------------------------------------------- E14 mega


#: Demand injected per simulated ms at load level 1 (scales linearly).
MEGA_DEMAND_RATE = 0.6
MEGA_TICK = 8.0
#: Refresh the pool snapshot every this-many ticks (the router cadence).
POOL_POLL_TICKS = 5


def run_mega_autoscale(
    level: int, seed: int, quick: bool, population: int
) -> Dict:
    """One E14 load level with a columnar mega-scale caller population.

    The frame rows are *callers*: each carries a binding-cache entry (the
    ``cache_epoch`` column plus a cached pool-member index).  Every
    controller tick a seeded vectorised draw picks the active callers;
    the stale ones (their cached epoch trails the pool's) lazily re-fetch
    the pool -- exactly the ClonePoolRouter contract, amortised over
    millions of cache entries -- and the tick's demand lands on the real
    pool members' CLASS_OBJECT counters.  The LoadMonitor and
    CloneController see the same signal ordinary clients would generate,
    and react with real Clone()/RetireClone() traffic.
    """
    import math

    from repro.autoscale import (
        AutoscaleConfig,
        CloneController,
        build_placement_agent,
    )
    from repro.experiments.e14_autoscale import (
        COOLDOWN,
        HIGH_WATER,
        LOW_WATER,
        MAX_CLONES,
        MAX_PROCESSES,
    )
    from repro.metrics.counters import ComponentId, ComponentKind, MetricsRegistry
    from repro.simkernel.rng import RngStreams
    from repro.system.legion import LegionSystem, SiteSpec
    from repro.workloads.apps import CounterImpl

    np = require_numpy("the E14 mega-scale phase")
    system = LegionSystem.build(
        [
            SiteSpec("east", hosts=3, max_processes=MAX_PROCESSES),
            SiteSpec("west", hosts=3, max_processes=MAX_PROCESSES),
        ],
        seed=seed,
    )
    hot = system.create_class("HotClass", factory=CounterImpl)
    placement = build_placement_agent(system)
    controller = CloneController(
        system,
        hot,
        AutoscaleConfig(
            high_water=HIGH_WATER,
            low_water=LOW_WATER,
            cooldown=COOLDOWN,
            tick=MEGA_TICK,
            max_clones=MAX_CLONES,
        ),
        placement=placement,
    )
    controller.start()

    # The caller population: one frame row per caller.  ``cache_epoch``
    # is the binding-cache column; the cached pool-member index rides in
    # a parallel array (it is only meaningful next to its epoch).
    frame = StateFrame(n_classes=1, n_hosts=4)
    frame.extend(
        population,
        klass=np.zeros(population, dtype=np.int32),
        host=(np.arange(population, dtype=np.int64) % 4).astype(np.int32),
    )
    member = np.zeros(population, dtype=np.int32)

    demand_per_tick = max(1, round(MEGA_DEMAND_RATE * level * MEGA_TICK))
    expected = min(MAX_CLONES + 1, math.ceil(MEGA_DEMAND_RATE * level / HIGH_WATER))
    warmup_ticks = math.ceil((400.0 + 550.0 * (expected - 1)) / MEGA_TICK)
    measure_ticks = 40 if quick else 100
    stream = RngStreams(seed).numpy_stream(f"e14-mega-{level}")

    metrics = system.services.metrics
    rebinds = 0
    issued = 0
    routed = 0
    peak_members = 1
    max_member_calls = 0
    start = system.kernel.now
    epoch, pool = system.call(hot.loid, "GetClonePool")
    pool_names = [str(b.loid) for b in pool]
    for k in range(warmup_ticks + measure_ticks):
        if k % POOL_POLL_TICKS == 0:
            # Refresh the pool snapshot on the router cadence, not every
            # tick: callers bound to an older epoch keep routing into the
            # stale snapshot until they next call (lazy rebind), and the
            # polling traffic itself stays negligible next to the
            # injected demand.
            epoch, pool = system.call(hot.loid, "GetClonePool")
            pool_names = [str(b.loid) for b in pool]
        peak_members = max(peak_members, len(pool))
        active = stream.integers(0, population, size=demand_per_tick)
        stale = frame.cache_epoch[active] != epoch
        stale_ids = active[stale]
        if stale_ids.size:
            rebinds += int(stale_ids.size)
            member[stale_ids] = (stale_ids % len(pool)).astype(np.int32)
            frame.cache_epoch[stale_ids] = epoch
        counts = np.bincount(member[active], minlength=len(pool))
        issued += int(active.size)
        if k == warmup_ticks:
            system.reset_measurements()
        for m, count in enumerate(counts.tolist()):
            if count:
                routed += count
                metrics.incr(
                    ComponentId(ComponentKind.CLASS_OBJECT, pool_names[m]),
                    MetricsRegistry.REQUESTS,
                    count,
                )
                if k >= warmup_ticks:
                    max_member_calls = max(max_member_calls, count)
        np.add.at(frame.value, active, 1)  # the caller-side call tally
        system.kernel.run(until=start + (k + 1) * MEGA_TICK)
    final_members = len(system.call(hot.loid, "GetClonePool")[1])

    # Scale-down: with the demand gone the pool must drain back.
    deadline = system.kernel.now + 6_000.0
    while system.kernel.now < deadline and system.call(hot.loid, "CloneCount") > 0:
        system.kernel.run(until=system.kernel.now + 100.0)
    drained = system.call(hot.loid, "CloneCount") == 0
    controller.stop()
    system.kernel.run()

    final_epoch, final_pool = system.call(hot.loid, "GetClonePool")
    fresh = frame.cache_epoch == final_epoch
    fresh_members_valid = bool((member[fresh] < len(final_pool)).all())
    return {
        "level": level,
        "population": population,
        "issued": issued,
        "routed": routed,
        "rebinds": rebinds,
        "expected_members": expected,
        "peak_members": peak_members,
        "final_members_at_load": final_members,
        "max_member_calls_per_tick": max_member_calls,
        "drained_to_min": drained,
        "fresh_members_valid": fresh_members_valid,
        "stale_fraction_final": round(
            float((~fresh).sum()) / population, 6
        ),
        "caller_calls_total": int(frame.value.sum()),
        "allocator_high_water": frame.allocator.high_water,
        "sim_clock": system.kernel.now,
        "sim_events": system.kernel.events_executed,
    }


# ----------------------------------------------------------------- E15 mega


#: Aggregate service capacity per tick, as a fraction of the population.
MEGA_CAP_FRACTION = 50
#: Queue cap (admission arm), in multiples of one host's per-tick capacity.
MEGA_QCAP_TICKS = 4
#: A served call is goodput only if it queued for <= this many ticks.
MEGA_DEADLINE_TICKS = 6


def run_mega_overload(
    level: int, arm: str, seed: int, quick: bool, population: int
) -> Dict:
    """One E15 (level, arm) unit over a mega-scale object frame.

    Per-host carryover queues: each tick's arrivals (a seeded vectorised
    draw over the whole population) are admitted against the target
    host's queue headroom -- in dense-id order within each host, so the
    admission cut is deterministic -- then every host serves up to its
    per-tick capacity, oldest first.  The **flow** arm sheds arrivals
    beyond ``MEGA_QCAP_TICKS`` of queue; the **baseline** admits
    everything and watches its queue (and thus its queueing delay) grow
    without bound, so its serves arrive late and goodput collapses.
    """
    from repro.simkernel.rng import RngStreams

    np = require_numpy("the E15 mega-scale phase")
    flow = arm == "flow"
    n_hosts = max(8, population // 125_000)
    n_classes = max(4, population // 1_000)
    cap_per_host = max(1, population // MEGA_CAP_FRACTION // n_hosts)
    qcap = MEGA_QCAP_TICKS * cap_per_host
    ticks = 12 if quick else 30
    draws_per_tick = max(1, level * population // MEGA_CAP_FRACTION)

    frame = StateFrame(n_classes=n_classes, n_hosts=n_hosts)
    frame.extend(
        population,
        klass=(np.arange(population, dtype=np.int64) % n_classes).astype(np.int32),
        host=(np.arange(population, dtype=np.int64) % n_hosts).astype(np.int32),
    )
    queue_h = np.zeros(n_hosts, dtype=np.int64)
    stream = RngStreams(seed).numpy_stream(f"e15-mega-{level}-{arm}")

    issued = admitted = shed = served = good = 0
    for _tick in range(ticks):
        targets = stream.integers(0, population, size=draws_per_tick)
        issued += int(targets.size)
        arr_obj = np.bincount(targets, minlength=population)
        uniq = np.nonzero(arr_obj)[0]
        if uniq.size == 0:
            continue
        hosts_of = frame.host[uniq].astype(np.int64)
        order = np.argsort(hosts_of, kind="stable")  # host groups, id-order within
        u = uniq[order]
        uh = hosts_of[order]
        a = arr_obj[u]
        # Exclusive running total within each host group: how many calls
        # ahead of this object already claimed headroom this tick.
        excl = np.cumsum(a) - a
        first_idx = np.searchsorted(uh, np.arange(n_hosts, dtype=np.int64))
        before = excl - excl[first_idx[uh]]
        if flow:
            headroom = np.maximum(0, qcap - queue_h)
            room = headroom[uh] - before
            adm = np.clip(room, 0, a)
        else:
            adm = a
        rej = a - adm
        frame.value[u] += adm
        frame.calls[u] += adm
        frame.shed[u] += rej
        frame.class_calls += np.bincount(
            frame.klass[u], weights=adm, minlength=n_classes
        ).astype(np.int64)
        if bool(rej.any()):
            frame.class_sheds += np.bincount(
                frame.klass[u], weights=rej, minlength=n_classes
            ).astype(np.int64)
        adm_h = np.bincount(uh, weights=adm, minlength=n_hosts).astype(np.int64)
        admitted += int(adm.sum())
        shed += int(rej.sum())
        queue_h += adm_h
        srv = np.minimum(queue_h, cap_per_host)
        # A tick's serves drain the oldest queued work: they are on time
        # iff the backlog they sat behind fits inside the deadline.
        on_time = (queue_h // cap_per_host) <= MEGA_DEADLINE_TICKS
        served += int(srv.sum())
        good += int(srv[on_time].sum())
        queue_h -= srv
        frame.queue = np.minimum(queue_h[frame.host], 2**31 - 1).astype(np.int32)

    queued_end = int(queue_h.sum())
    capacity = ticks * cap_per_host * n_hosts
    return {
        "level": level,
        "arm": arm,
        "population": population,
        "issued": issued,
        "admitted": admitted,
        "shed": shed,
        "served": served,
        "good": good,
        "queued_end": queued_end,
        "goodput_x": round(good / capacity, 4),
        "max_queue": int(queue_h.max()) if n_hosts else 0,
        "qcap": qcap,
        "settled": issued == admitted + shed and admitted == served + queued_end,
        "class_calls_total": int(frame.class_calls.sum()),
        "checksum": frame.value_checksum(),
        "sim_clock": float(ticks),
        "sim_events": issued,
    }
