"""Frame-at-once transition kernels plus the escalation boundary.

:class:`BulkEngine` drives a :class:`~repro.megascale.frame.StateFrame`
through ticks: each tick takes the whole tick's call targets as one array
and applies them with a handful of vectorised operations (bincount the
arrivals, clip at the admission limit, scatter-add the serves and sheds,
tally per class and per host).  No per-object Python runs for the bulk
population -- that is the entire point.

The *escalation boundary* is where the bulk world meets the rich-object
path.  Any id the scenario actually touches -- a call on a designated
"interesting" id, a fault on its host, a rebind, a clone -- is promoted
out of the frame: its columns are snapshotted, a rich twin takes over,
and subsequent calls to it run through the ordinary per-object machinery.
When it goes quiet it is demoted back: the twin's state folds onto the
*same* dense id (the allocator never recycles ids, so trace identities
survive the round trip).

The boundary is pluggable.  With ``boundary=None`` the engine carries
twins as plain per-id Python dicts -- the smallest possible rich-object
path, used by the reference/differential tests.  The live boundary in
:mod:`repro.megascale.scenario` backs each twin with a real Legion object
and routes escalated calls through ``runtime.invoke``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import LegionError
from repro.megascale.frame import BULK, LOST, PROMOTED, StateFrame


@dataclass
class TickOutcome:
    """One tick's accounting (all logical calls, not wire messages)."""

    tick: int
    issued: int = 0
    bulk_served: int = 0
    escalated: int = 0
    shed: int = 0


@dataclass
class EngineLedger:
    """Cumulative settlement ledger for one engine run.

    The identity mirrors the runtime's: every issued logical call must be
    accounted for -- served frame-at-once, served by a rich twin after
    escalation, or shed at the bulk admission limit.
    """

    issued: int = 0
    bulk_completed: int = 0
    escalated_issued: int = 0
    escalated_completed: int = 0
    shed: int = 0
    promotions: int = 0
    demotions: int = 0
    fault_promotions: int = 0
    promoted_by_fault: List[int] = field(default_factory=list)

    def settled(self) -> bool:
        """issued == bulk + escalated + shed, with no escalation pending."""
        return (
            self.issued
            == self.bulk_completed + self.escalated_completed + self.shed
            and self.escalated_issued == self.escalated_completed
        )


class BulkEngine:
    """Vectorised transitions for the bulk band + the escalation boundary.

    ``hot_ids`` are the scenario's standing "interesting set": calls to
    them always escalate.  ``per_tick_limit`` caps how many calls one
    bulk row admits per tick; the excess is shed (and tallied -- the
    settlement identity keeps its ``+ shed`` term).
    """

    def __init__(
        self,
        frame: StateFrame,
        hot_ids=(),
        per_tick_limit: Optional[int] = None,
        boundary=None,
        demote_after: int = 3,
    ) -> None:
        self.np = frame.np
        self.frame = frame
        self.boundary = boundary
        self.per_tick_limit = per_tick_limit
        self.demote_after = int(demote_after)
        self.ledger = EngineLedger()
        self.hot = self.np.zeros(frame.size, dtype=bool)
        for i in hot_ids:
            self.hot[i] = True
        #: promoted id → last tick a call touched it (drives demotion).
        self._last_touch: Dict[int, int] = {}
        #: promoted id → dict twin (only when no live boundary is set).
        self._twins: Dict[int, Dict[str, int]] = {}

    # ------------------------------------------------------------------ kernels

    def tick(self, tick: int, targets) -> TickOutcome:
        """Apply one tick's calls: bulk frame-at-once, the rest escalated."""
        np = self.np
        frame = self.frame
        t = np.asarray(targets, dtype=np.int64)
        out = TickOutcome(tick=tick, issued=int(t.size))
        self.ledger.issued += out.issued
        if t.size == 0:
            return out
        if bool((t >= frame.size).any()) or bool((t < 0).any()):
            raise LegionError("tick: target id out of range")

        escalate_mask = self.hot[t] | (frame.state[t] != BULK)
        bulk_targets = t[~escalate_mask]
        esc_targets = t[escalate_mask]

        # --- the bulk band: one pass of array arithmetic for the lot.
        if bulk_targets.size:
            arrivals = np.bincount(bulk_targets, minlength=frame.size)
            if self.per_tick_limit is not None:
                served = np.minimum(arrivals, self.per_tick_limit)
                shed = arrivals - served
            else:
                served = arrivals
                shed = np.zeros_like(arrivals)
            frame.value += served
            frame.calls += served
            frame.shed += shed
            frame.queue[: arrivals.size] = arrivals.astype(np.int32)
            frame.class_calls += np.bincount(
                frame.klass, weights=served, minlength=frame.n_classes
            ).astype(np.int64)
            if bool(shed.any()):
                frame.class_sheds += np.bincount(
                    frame.klass, weights=shed, minlength=frame.n_classes
                ).astype(np.int64)
            out.bulk_served = int(served.sum())
            out.shed = int(shed.sum())
            self.ledger.bulk_completed += out.bulk_served
            self.ledger.shed += out.shed

        # --- the escalated set: promote on first touch, then call rich.
        for i in esc_targets.tolist():
            self._escalated_call(int(i), tick)
        out.escalated = int(esc_targets.size)
        return out

    def _escalated_call(self, i: int, tick: int) -> None:
        """Route one call through the rich-object path (promoting first)."""
        if int(self.frame.state[i]) != PROMOTED:
            self._promote([i], reason="touch")
        self._last_touch[i] = tick
        self.ledger.escalated_issued += 1
        if self.boundary is not None:
            self.boundary.call(i)
        else:
            twin = self._twins[i]
            twin["value"] += 1
            self.note_escalated_done(i)

    def note_escalated_done(self, i: int) -> None:
        """One escalated call settled on the rich side; close the ledger."""
        self.ledger.escalated_completed += 1
        self.frame.class_calls[int(self.frame.klass[i])] += 1

    # --------------------------------------------------------------- promotion

    def _promote(self, ids: List[int], reason: str) -> None:
        snapshots = self.frame.promote(ids)
        self.ledger.promotions += len(snapshots)
        if reason == "fault":
            self.ledger.fault_promotions += len(snapshots)
            self.ledger.promoted_by_fault.extend(int(i) for i in ids)
        if self.boundary is not None:
            self.boundary.promote(snapshots, reason=reason)
        else:
            for snap in snapshots:
                self._twins[snap["id"]] = {"value": snap["value"]}

    def demote_idle(self, tick: int) -> int:
        """Fold quiet twins back into the frame; returns how many."""
        idle = sorted(
            i
            for i, last in self._last_touch.items()
            if tick - last >= self.demote_after
        )
        for i in idle:
            self._demote(i)
        return len(idle)

    def demote_all(self) -> int:
        """End-of-run drain: every twin folds back (reporting needs it)."""
        promoted = sorted(self._last_touch)
        for i in promoted:
            self._demote(i)
        return len(promoted)

    def _demote(self, i: int) -> None:
        home = int(self.frame.host[i])
        if not bool(self.frame.host_up[home]):
            home = self._surviving_host()
        if self.boundary is not None:
            value = self.boundary.demote(i)
        else:
            value = self._twins.pop(i)["value"]
        self.frame.demote(i, value=value, host=home)
        self._last_touch.pop(i, None)
        self.ledger.demotions += 1

    def _surviving_host(self) -> int:
        np = self.np
        up = np.nonzero(self.frame.host_up)[0]
        if up.size == 0:
            raise LegionError("no surviving host to re-home a demoted row")
        return int(up[0])

    # ------------------------------------------------------------------- chaos

    def crash_host(self, host_id: int) -> List[int]:
        """A bulk-backed host dies: promote *exactly* the affected ids.

        The bulk rows occupying the crashed host's slots are the blast
        radius -- each one is promoted into the rich-object path (the
        frame snapshot is its checkpoint, exactly the magistrate/OPR
        recovery shape), and nothing else moves bands.  Returns the
        promoted ids, in dense-id order.
        """
        affected = self.frame.bulk_ids_on_host(host_id).tolist()
        self.frame.crash_host(host_id)
        if affected:
            self._promote([int(i) for i in affected], reason="fault")
            for i in affected:
                self._last_touch.setdefault(int(i), 0)
        return [int(i) for i in affected]

    def restore_host(self, host_id: int) -> None:
        """Bring the host back; demotion may re-home rows onto it again."""
        self.frame.restore_host(host_id)

    # --------------------------------------------------------------- reporting

    def promoted_ids(self) -> List[int]:
        """Currently promoted ids, in dense-id order."""
        return sorted(self._last_touch)

    def settled(self) -> bool:
        """The engine-side settlement identity (shed term included)."""
        return self.ledger.settled()
