"""Exception hierarchy for the Legion reproduction.

Every error raised by the library derives from :class:`LegionError`, so
applications can catch the whole family with a single ``except`` clause.
Errors that travel across the simulated network (i.e. that a remote method
raises and that must be re-raised at the caller) are subclasses of
:class:`RemoteError` and carry enough information to be reconstructed on the
caller's side.
"""

from __future__ import annotations


class LegionError(Exception):
    """Base class for all errors raised by the Legion reproduction."""


# ---------------------------------------------------------------------------
# Simulation-kernel errors
# ---------------------------------------------------------------------------


class SimulationError(LegionError):
    """Base class for errors raised by the discrete-event kernel."""


class SimulationDeadlock(SimulationError):
    """``run()`` was asked to reach a condition but the event queue drained."""


class ProcessKilled(SimulationError):
    """Raised inside a simulation process that was killed externally."""


class FutureError(SimulationError):
    """Misuse of a :class:`~repro.simkernel.futures.SimFuture`."""


# ---------------------------------------------------------------------------
# Network errors
# ---------------------------------------------------------------------------


class NetworkError(LegionError):
    """Base class for errors in the simulated network substrate."""


class DeliveryFailure(NetworkError):
    """A message could not be delivered to its destination endpoint.

    The Legion communication layer uses this to detect stale bindings
    (paper section 4.1.4): an Object Address that no longer has a registered
    endpoint produces a :class:`DeliveryFailure` back at the sender.
    """

    def __init__(self, message: str, *, element=None) -> None:
        super().__init__(message)
        self.element = element


class AddressError(NetworkError):
    """Malformed Object Address or Object Address Element."""


class PartitionedError(DeliveryFailure):
    """The destination is currently unreachable due to a network partition."""


class InvocationTimeout(DeliveryFailure):
    """No reply arrived within the caller's deadline.

    Raised locally by the communication layer when a message (or its
    reply) was silently lost; treated like a stale binding: invalidate
    and refresh.
    """


# ---------------------------------------------------------------------------
# Naming errors
# ---------------------------------------------------------------------------


class NamingError(LegionError):
    """Base class for naming-subsystem errors."""


class InvalidLOID(NamingError):
    """A LOID field is out of range or otherwise malformed."""


class BindingNotFound(NamingError):
    """No binding could be produced for a LOID by any means.

    Raised when the full resolution procedure of paper section 4.1 --
    local cache, Binding Agent, class object, magistrate activation --
    fails to yield an Object Address (e.g. the object was deleted).
    """

    def __init__(self, message: str, *, loid=None) -> None:
        super().__init__(message)
        self.loid = loid


class ContextError(NamingError):
    """A string name could not be resolved by a Context."""


# ---------------------------------------------------------------------------
# Remote (cross-object) errors -- marshalled across the simulated network
# ---------------------------------------------------------------------------


class RemoteError(LegionError):
    """Base class for errors that a remote method raises at the caller."""


class MethodNotFound(RemoteError):
    """The target object's interface does not export the invoked method."""


class SecurityDenied(RemoteError):
    """A MayI() check rejected the invocation (paper section 2.4)."""


class RequestRefused(RemoteError):
    """A Magistrate or Host Object declined to service a request.

    Member function calls on Magistrates are requests, not commands
    (paper section 3.8); this is the refusal outcome.
    """


class ObjectDeleted(RemoteError):
    """The target object was removed from the system via Delete()."""


class Overloaded(RemoteError):
    """Admission control shed the request before it was dispatched.

    A first-class flow-control outcome, not a fault: the target is alive
    and its binding is valid, but its bounded queue had no room (or the
    request's deadline was already hopeless).  Carries the server-computed
    ``retry_after`` pushback hint -- the simulated-ms delay after which a
    retry has a realistic chance of being admitted.  RetryPolicy honours
    the hint instead of treating the reply as a stale binding.
    """

    def __init__(self, message: str, *, retry_after: float = 0.0) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class InvocationFailed(RemoteError):
    """The remote method raised an unexpected exception."""

    def __init__(self, message: str, *, remote_type: str = "") -> None:
        super().__init__(message)
        self.remote_type = remote_type


# ---------------------------------------------------------------------------
# Object-model errors
# ---------------------------------------------------------------------------


class ObjectModelError(LegionError):
    """Base class for core object-model errors."""


class AbstractClassError(ObjectModelError):
    """Create() was invoked on an Abstract class (empty Create)."""


class PrivateClassError(ObjectModelError):
    """Derive() was invoked on a Private class (empty Derive)."""


class FixedClassError(ObjectModelError):
    """InheritFrom() was invoked on a Fixed class (empty InheritFrom)."""


class InterfaceError(ObjectModelError):
    """Interface-description problems: bad signature, merge conflict, etc."""


class LifecycleError(ObjectModelError):
    """Illegal object-state transition (e.g. deactivating an Inert object)."""


class UnknownObject(ObjectModelError):
    """A class object was asked about a LOID absent from its logical table."""


# ---------------------------------------------------------------------------
# Infrastructure errors
# ---------------------------------------------------------------------------


class HostError(LegionError):
    """Host Object problems: no capacity, unknown process, etc."""


class NoCapacity(HostError):
    """The host has no free process slot, or resource limits were exceeded."""


class StorageError(LegionError):
    """Persistent-store problems: unknown persistent address, disk full."""


class BootstrapError(LegionError):
    """The system bring-up procedure of paper section 4.2.1 failed."""


class SchedulingError(LegionError):
    """No placement satisfying the constraints could be found."""


class ReplicationError(LegionError):
    """Replica-group management failure."""
