"""System bring-up and the LegionSystem facade.

* :mod:`repro.system.bootstrap` -- the bootstrap procedure of paper
  section 4.2.1: the core Abstract class objects (LegionObject,
  LegionClass, LegionHost, LegionMagistrate, LegionBindingAgent,
  LegionScheduler) are "started exactly once -- when the Legion system
  comes alive", outside the normal creation path.
* :class:`LegionSystem` -- a builder/facade that assembles a complete
  simulated Legion: sites with hosts and disks, one jurisdiction and
  magistrate per site, binding agents, the standard derived classes
  (UnixHost and friends, StandardMagistrate, ...), a string-name Context,
  and a client console for issuing method calls from outside Legion
  (the "client host" notion of the paper's section 2.1.3 footnote).
"""

from repro.system.bootstrap import CoreObjects, bootstrap_core, register_standard_factories
from repro.system.legion import LegionSystem, SiteSpec

__all__ = [
    "CoreObjects",
    "bootstrap_core",
    "register_standard_factories",
    "LegionSystem",
    "SiteSpec",
]
