"""Bootstrap: bringing up the core objects (paper section 4.2.1).

"Legion contains a set of core objects and object types that implement the
mechanism by which Legion objects are created and activated.  For this
reason, the creation and activation of this set of objects must be carried
out by mechanisms different from those used for normal Legion objects ...
The core objects, including the core Abstract classes (LegionObject,
LegionClass, etc.), Host Objects, and Magistrates, are intended to be
started from the command line or shell script in the host operating
system.  The Abstract class objects are started exactly once -- when the
Legion system comes alive."

:func:`bootstrap_core` is that "exactly once": it constructs the six core
class objects directly (no magistrate, no host object -- they do not exist
yet), registers them with LegionClass, publishes their bindings as
well-known, and records the Fig. 7 relations (LegionClass is derived from
LegionObject; so are the other core Abstract classes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.errors import BootstrapError
from repro.core.class_types import ClassFlavor
from repro.core.context import SystemServices
from repro.core.legion_class import CLASS_OBJECT_FACTORY, ClassObjectImpl
from repro.core.metaclass import LegionClassImpl
from repro.core.relations import RelationGraph
from repro.core.server import ObjectServer
from repro.binding.agent import BindingAgentImpl
from repro.metrics.counters import ComponentKind
from repro.naming.loid import (
    CLASS_ID_LEGION_BINDING_AGENT,
    CLASS_ID_LEGION_CLASS,
    CLASS_ID_LEGION_HOST,
    CLASS_ID_LEGION_MAGISTRATE,
    CLASS_ID_LEGION_OBJECT,
    CLASS_ID_LEGION_SCHEDULER,
    LOID,
)
from repro.scheduling.agent import (
    LeastLoadedSchedulingAgent,
    RandomSchedulingAgent,
    RoundRobinSchedulingAgent,
)

#: Role name → (class id, flavor).  All core classes are Abstract except
#: LegionClass, which must Create/Derive (it is the metaclass), and
#: LegionObject, which must Derive (every user class descends from it)
#: but never Create (it is Abstract in the instance sense).
CORE_CLASS_SPECS = {
    "LegionObject": (CLASS_ID_LEGION_OBJECT, ClassFlavor.ABSTRACT),
    "LegionClass": (CLASS_ID_LEGION_CLASS, ClassFlavor.REGULAR),
    "LegionHost": (CLASS_ID_LEGION_HOST, ClassFlavor.ABSTRACT),
    "LegionMagistrate": (CLASS_ID_LEGION_MAGISTRATE, ClassFlavor.ABSTRACT),
    "LegionBindingAgent": (CLASS_ID_LEGION_BINDING_AGENT, ClassFlavor.ABSTRACT),
    "LegionScheduler": (CLASS_ID_LEGION_SCHEDULER, ClassFlavor.ABSTRACT),
}


@dataclass
class CoreObjects:
    """The bootstrap result: the six core class-object servers by role."""

    servers: Dict[str, ObjectServer]

    def __getitem__(self, role: str) -> ObjectServer:
        return self.servers[role]

    @property
    def legion_class(self) -> LegionClassImpl:
        """The LegionClass implementation (for direct bring-up wiring)."""
        return self.servers["LegionClass"].impl  # type: ignore[return-value]

    def loid(self, role: str) -> LOID:
        """The LOID of a core class by role."""
        return self.servers[role].loid


def register_standard_factories(services: SystemServices) -> None:
    """Publish the implementations the core machinery itself needs.

    User applications register their own factories on top.
    """
    impls = services.impls
    if CLASS_OBJECT_FACTORY not in impls:
        impls.register(CLASS_OBJECT_FACTORY, ClassObjectImpl)
    for name, factory in [
        ("legion.binding-agent", BindingAgentImpl),
        ("legion.scheduler.round-robin", RoundRobinSchedulingAgent),
        ("legion.scheduler.random", RandomSchedulingAgent),
        ("legion.scheduler.least-loaded", LeastLoadedSchedulingAgent),
    ]:
        if name not in impls:
            impls.register(name, factory)


def bootstrap_core(services: SystemServices, core_host: int) -> CoreObjects:
    """Start the core Abstract class objects on ``core_host``.

    Must run exactly once per system; raises :class:`BootstrapError` on a
    second attempt (the well-known table would already be populated).
    """
    if services.well_known:
        raise BootstrapError("core objects already bootstrapped")
    if services.relations is None:
        services.relations = RelationGraph()
    register_standard_factories(services)

    servers: Dict[str, ObjectServer] = {}
    for role, (class_id, flavor) in CORE_CLASS_SPECS.items():
        if role == "LegionClass":
            impl: ClassObjectImpl = LegionClassImpl()
        else:
            impl = ClassObjectImpl(class_name=role, class_id=class_id, flavor=flavor)
        loid = LOID.for_class(class_id, services.secret)
        kind = (
            ComponentKind.LEGION_CLASS
            if role == "LegionClass"
            else ComponentKind.CLASS_OBJECT
        )
        server = ObjectServer(
            services,
            loid,
            impl,
            host=core_host,
            component_kind=kind,
            component_name=role,
            cache_capacity=4096,
        )
        servers[role] = server
        services.well_known[role] = loid
        services.core_bindings[role] = server.binding()

    # Now that every core binding exists, seed them into the core servers'
    # own runtimes (they were constructed before the table was complete).
    for server in servers.values():
        for binding in services.core_bindings.values():
            if binding.loid != server.loid:
                server.runtime.seed_binding(binding, permanent=True)

    # Register the cores with LegionClass so the responsibility walk of
    # section 4.1.3 terminates here, and record the Fig. 7 relations.
    legion_class = servers["LegionClass"].impl
    relations = services.relations
    legion_object_loid = servers["LegionObject"].loid
    for role, server in servers.items():
        legion_class.register_core_class(server.binding(), role)
        if role != "LegionObject":
            relations.record_kind_of(server.loid, legion_object_loid)

    return CoreObjects(servers=servers)
