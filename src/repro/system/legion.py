"""LegionSystem: builder and facade for a complete simulated Legion.

``LegionSystem.build(...)`` assembles, in bootstrap order (section 4.2.1):

1. the simulation kernel, network, and latency model (hosts → sites);
2. the six core Abstract class objects (via :mod:`repro.system.bootstrap`);
3. the standard derived classes, started out-of-band like the cores:
   UnixHost / SPMDHost / UnixSMMP / CM-5 / CrayT3D (Fig. 8),
   StandardMagistrate (kind-of LegionMagistrate), StandardBindingAgent
   (kind-of LegionBindingAgent), StandardScheduler;
4. per site: a Jurisdiction with disks (a Vault), Host Objects started
   "from the command line" that then *contact their class* to register,
   a Magistrate that adopts the site's hosts, and a Binding Agent that
   becomes the default agent for objects activated at that site;
5. a string-name Context (the single persistent name space) and a client
   console -- a "client host" in the paper's sense -- for issuing calls
   from outside Legion.

After ``build``, applications use :meth:`create_class`,
:meth:`create_instance`, and :meth:`call` -- each a thin wrapper over real
Legion method invocations travelling through the simulated network.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import BootstrapError
from repro.binding.agent import BindingAgentImpl
from repro.core.class_types import ClassFlavor
from repro.core.context import SystemServices
from repro.core.legion_class import ClassObjectImpl
from repro.core.object_base import LegionObjectImpl
from repro.core.relations import RelationGraph
from repro.core.server import ObjectServer
from repro.hosts.host_object import HostObjectImpl
from repro.hosts.host_types import (
    CM5HostImpl,
    CrayT3DHostImpl,
    SPMDHostImpl,
    UnixHostImpl,
    UnixSMMPHostImpl,
)
from repro.jurisdiction.jurisdiction import Jurisdiction
from repro.jurisdiction.magistrate import MagistrateImpl
from repro.metrics.counters import ComponentKind
from repro.naming.binding import Binding
from repro.naming.context import Context
from repro.naming.loid import LOID
from repro.net.latency import LatencyModel
from repro.net.network import Network
from repro.persistence.storage import PersistentStore
from repro.simkernel.futures import SimFuture
from repro.simkernel.kernel import SimKernel
from repro.simkernel.rng import RngStreams
from repro.system.bootstrap import CoreObjects, bootstrap_core

#: host_type string → Host Object implementation class (Fig. 8).
HOST_TYPES: Dict[str, type] = {
    "unix": UnixHostImpl,
    "unix-smmp": UnixSMMPHostImpl,
    "spmd": SPMDHostImpl,
    "cm-5": CM5HostImpl,
    "cray-t3d": CrayT3DHostImpl,
}

#: host_type → (class name, superclass name) for the Fig. 8 hierarchy.
HOST_CLASS_HIERARCHY: Dict[str, Tuple[str, str]] = {
    "unix": ("UnixHost", "LegionHost"),
    "spmd": ("SPMDHost", "LegionHost"),
    "unix-smmp": ("UnixSMMP", "UnixHost"),
    "cm-5": ("CM5", "SPMDHost"),
    "cray-t3d": ("CrayT3D", "SPMDHost"),
}


@dataclass
class SiteSpec:
    """One site (organisation) of the testbed."""

    name: str
    hosts: int = 2
    host_type: str = "unix"
    disks: int = 1
    disk_capacity: Optional[int] = None
    #: Processes per host (None = the host type's default).
    max_processes: Optional[int] = None


class LegionSystem:
    """A fully assembled simulated Legion.  Use :meth:`build`."""

    #: Class id used for client consoles (outside Legion; never resolved).
    _CLIENT_CLASS_ID = 7

    def __init__(self) -> None:
        self.kernel: SimKernel = None  # type: ignore[assignment]
        self.network: Network = None  # type: ignore[assignment]
        self.services: SystemServices = None  # type: ignore[assignment]
        self.core: CoreObjects = None  # type: ignore[assignment]
        self.sites: List[SiteSpec] = []
        self.jurisdictions: Dict[str, Jurisdiction] = {}
        self.magistrates: Dict[str, ObjectServer] = {}
        self.host_servers: Dict[int, ObjectServer] = {}
        self.site_hosts: Dict[str, List[int]] = {}
        self.agents: Dict[str, ObjectServer] = {}
        self.standard_classes: Dict[str, ObjectServer] = {}
        self.context = Context()
        self.console: ObjectServer = None  # type: ignore[assignment]
        self._client_seq = itertools.count(1)
        self._host_ids = itertools.count(1)
        self._registrations: list = []

    # ------------------------------------------------------------------ building

    @classmethod
    def build(
        cls,
        sites: Sequence[SiteSpec],
        seed: int = 0,
        placement: str = "round-robin",
        agent_cache_capacity: int = 4096,
        binding_ttl: Optional[float] = None,
        latency_model: Optional[LatencyModel] = None,
        flow=None,
    ) -> "LegionSystem":
        """Assemble a system with one jurisdiction per site.

        ``flow`` installs a :class:`repro.flow.FlowConfig` before any
        object activates, so every ObjectServer and runtime in the system
        (bootstrap included) is built under the same flow-control regime.
        """
        if not sites:
            raise BootstrapError("a Legion system needs at least one site")
        system = cls()
        system.sites = list(sites)
        system.kernel = SimKernel()
        rng = RngStreams(seed)
        lat = latency_model or LatencyModel()
        system.network = Network(system.kernel, lat, rng=rng.stream("network"))
        system.services = SystemServices(
            kernel=system.kernel,
            network=system.network,
            rng=rng,
            relations=RelationGraph(),
            flow=flow,
        )

        # -- host-id allocation first: the core objects need a host to sit on.
        for spec in system.sites:
            ids = [next(system._host_ids) for _ in range(spec.hosts)]
            system.site_hosts[spec.name] = ids
            for host_id in ids:
                lat.assign_host(host_id, spec.name)

        core_host = system.site_hosts[system.sites[0].name][0]
        system.core = bootstrap_core(system.services, core_host)

        # -- standard derived classes, started out-of-band (Fig. 8 / Fig. 9).
        system._bootstrap_standard_classes(core_host)

        # -- per-site infrastructure.
        for spec in system.sites:
            system._build_site(spec, placement, agent_cache_capacity)

        # -- the default binding agent is the first site's agent.
        first_site = system.sites[0].name
        system.services.default_binding_agent = system.agents[first_site].binding()
        # Core objects also get an agent (they were built before agents).
        for server in system.core.servers.values():
            server.runtime.set_binding_agent(system.agents[first_site].binding())

        # -- open LegionObject and LegionClass for user derivation: any
        #    magistrate may host user classes and instances.
        all_magistrates = [m.loid for m in system.magistrates.values()]
        for role in ("LegionObject", "LegionClass"):
            system.core[role].impl.candidate_magistrates = list(all_magistrates)
        if binding_ttl is not None:
            for role in ("LegionObject", "LegionClass"):
                system.core[role].impl.binding_ttl = binding_ttl

        # -- a client console (the paper's "client host" notion).
        system.console = system.new_client("console")

        # -- drain bootstrap registrations, surfacing any failure.
        system.kernel.run()
        for fut in system._registrations:
            if not fut.done():
                raise BootstrapError(f"registration {fut.name!r} never completed")
            fut.result()  # re-raises registration failures
        system._registrations.clear()
        return system

    def _bootstrap_standard_classes(self, core_host: int) -> None:
        """Start the Fig. 8 host classes and the standard infrastructure
        classes out-of-band, registering each with LegionClass."""
        legion_class = self.core.legion_class
        relations = self.services.relations

        def start_class(name: str, superclass_role_or_name: str, flavor=ClassFlavor.REGULAR) -> ObjectServer:
            if superclass_role_or_name in self.core.servers:
                super_loid = self.core.loid(superclass_role_or_name)
            else:
                super_loid = self.standard_classes[superclass_role_or_name].loid
            class_id = legion_class.allocate_class_id(super_loid, name)
            loid = LOID.for_class(class_id, self.services.secret)
            impl = ClassObjectImpl(
                class_name=name,
                class_id=class_id,
                flavor=flavor,
                superclass=super_loid,
            )
            server = ObjectServer(
                self.services,
                loid,
                impl,
                host=core_host,
                component_kind=ComponentKind.CLASS_OBJECT,
                component_name=name,
                cache_capacity=4096,
            )
            for binding in self.services.core_bindings.values():
                server.runtime.seed_binding(binding, permanent=True)
            relations.record_kind_of(loid, super_loid)
            # The creating (responsible) class must be able to locate the
            # new class object: enter it in the creator's logical table.
            creator_server = self._server_for(super_loid)
            if creator_server is not None:
                from repro.core.table import TableRow

                creator_server.impl.table.add(
                    TableRow(
                        loid=loid,
                        object_address=server.address,
                        current_magistrates=[],
                        is_subclass=True,
                    )
                )
            self.standard_classes[name] = server
            return server

        # Fig. 8 host hierarchy (parents before children).
        start_class("UnixHost", "LegionHost", ClassFlavor.REGULAR)
        start_class("SPMDHost", "LegionHost", ClassFlavor.REGULAR)
        start_class("UnixSMMP", "UnixHost", ClassFlavor.REGULAR)
        start_class("CM5", "SPMDHost", ClassFlavor.REGULAR)
        start_class("CrayT3D", "SPMDHost", ClassFlavor.REGULAR)
        # Standard infrastructure classes (Fig. 9 pattern).
        start_class("StandardMagistrate", "LegionMagistrate")
        start_class("StandardBindingAgent", "LegionBindingAgent")
        start_class("StandardScheduler", "LegionScheduler")

    def _server_for(self, loid: LOID) -> Optional[ObjectServer]:
        for server in self.core.servers.values():
            if server.loid == loid:
                return server
        for server in self.standard_classes.values():
            if server.loid == loid:
                return server
        return None

    def _build_site(self, spec: SiteSpec, placement: str, agent_cache: int) -> None:
        """One site: jurisdiction, disks, hosts, magistrate, binding agent."""
        jurisdiction = Jurisdiction(spec.name)
        for i in range(spec.disks):
            jurisdiction.vault.add_store(
                PersistentStore(spec.name, f"disk{i}", capacity_bytes=spec.disk_capacity)
            )
        self.jurisdictions[spec.name] = jurisdiction

        host_class_name, _parent = HOST_CLASS_HIERARCHY[spec.host_type]
        host_class = self.standard_classes[host_class_name]
        host_impl_type = HOST_TYPES[spec.host_type]

        # Host Objects: started "from a command line" on each host, then
        # they contact their class to register (done below, by message).
        site_host_servers: List[ObjectServer] = []
        for host_id in self.site_hosts[spec.name]:
            kwargs: Dict[str, Any] = {"host_id": host_id}
            if spec.max_processes is not None and spec.host_type in ("unix", "unix-smmp"):
                kwargs["max_processes"] = spec.max_processes
            impl: HostObjectImpl = host_impl_type(**kwargs)
            loid = host_class.impl._allocate_instance_loid()
            server = ObjectServer(
                self.services,
                loid,
                impl,
                host=host_id,
                component_kind=ComponentKind.HOST_OBJECT,
                component_name=f"{spec.name}/h{host_id}",
            )
            self.host_servers[host_id] = server
            site_host_servers.append(server)
            jurisdiction.add_host(host_id, loid)

        # The site's Magistrate, on the site's first host.
        magistrate_class = self.standard_classes["StandardMagistrate"]
        magistrate_impl = MagistrateImpl(jurisdiction, placement=placement)
        magistrate_loid = magistrate_class.impl._allocate_instance_loid()
        magistrate_server = ObjectServer(
            self.services,
            magistrate_loid,
            magistrate_impl,
            host=self.site_hosts[spec.name][0],
            component_kind=ComponentKind.MAGISTRATE,
            component_name=spec.name,
        )
        self.magistrates[spec.name] = magistrate_server
        jurisdiction.magistrate = magistrate_loid

        # The site's Binding Agent, on the site's first host.
        agent_class = self.standard_classes["StandardBindingAgent"]
        agent_impl = BindingAgentImpl()
        agent_loid = agent_class.impl._allocate_instance_loid()
        agent_server = ObjectServer(
            self.services,
            agent_loid,
            agent_impl,
            host=self.site_hosts[spec.name][0],
            component_kind=ComponentKind.BINDING_AGENT,
            component_name=spec.name,
            cache_capacity=agent_cache,
        )
        self.agents[spec.name] = agent_server

        # Wire the site together (bring-up is direct; registration is by
        # real Legion invocation, per section 4.2.1).
        agent_binding = agent_server.binding()
        # The agent consults itself on its own cache misses (the message
        # still travels the network; self-resolution bottoms out at the
        # seeded LegionClass binding).
        agent_server.runtime.set_binding_agent(agent_binding)
        magistrate_server.runtime.set_binding_agent(agent_binding)
        for server in site_host_servers:
            impl = server.impl
            impl.site_binding_agent = agent_binding
            impl.magistrate = magistrate_loid
            server.runtime.set_binding_agent(agent_binding)
            magistrate_impl.add_host(server.binding())
            self._registrations.append(
                self.kernel.spawn(
                    server.runtime.invoke(
                        host_class.loid, "RegisterOutOfBand", server.binding()
                    ),
                    name=f"register-host-{server.loid}",
                )
            )
        self._registrations.append(
            self.kernel.spawn(
                magistrate_server.runtime.invoke(
                    magistrate_class.loid,
                    "RegisterOutOfBand",
                    magistrate_server.binding(),
                ),
                name=f"register-magistrate-{spec.name}",
            )
        )
        self._registrations.append(
            self.kernel.spawn(
                agent_server.runtime.invoke(
                    agent_class.loid, "RegisterOutOfBand", agent_server.binding()
                ),
                name=f"register-agent-{spec.name}",
            )
        )

    # ------------------------------------------------------------------- clients

    def new_client(self, name: str = "", site: Optional[str] = None) -> ObjectServer:
        """A client console: can call into Legion, is not a Legion resource.

        Clients live on a site's first host (default: the first site) so
        their traffic has a locality class, but they are not registered
        with any class -- per the paper's "client hosts" footnote.
        """
        site = site or self.sites[0].name
        host_id = self.site_hosts[site][0]
        seq = next(self._client_seq)
        loid = LOID.for_instance(self._CLIENT_CLASS_ID, seq, self.services.secret)
        impl = LegionObjectImpl()
        server = ObjectServer(
            self.services,
            loid,
            impl,
            host=host_id,
            component_kind=ComponentKind.OTHER,
            component_name=name or f"client-{seq}",
        )
        server.runtime.set_binding_agent(self.agents[site].binding())
        return server

    # --------------------------------------------------------------------- running

    def run(self, until: Optional[float] = None) -> None:
        """Drain the event queue (optionally up to a simulated time)."""
        self.kernel.run(until=until)

    def call(
        self,
        target: Union[LOID, str],
        method: str,
        *args: Any,
        client: Optional[ObjectServer] = None,
        timeout: Optional[float] = None,
        max_events: Optional[int] = 2_000_000,
    ) -> Any:
        """Issue one Legion method invocation and run it to completion.

        ``target`` may be a LOID or a Context name.  The call originates
        at the console (or the given client), travels the simulated
        network, and this method returns the unwrapped result.
        """
        loid = self.lookup(target) if isinstance(target, str) else target
        origin = client or self.console
        fut = self.kernel.spawn(
            origin.runtime.invoke(loid, method, *args, timeout=timeout),
            name="call-" + method,
        )
        return self.kernel.run_until_complete(fut, max_events=max_events)

    def spawn(self, gen, name: str = "") -> SimFuture:
        """Start a simulation process (for scripted multi-call scenarios)."""
        return self.kernel.spawn(gen, name=name)

    # ------------------------------------------------------------------ name space

    def bind_name(self, name: str, loid: LOID) -> None:
        """Publish ``loid`` in the single persistent name space."""
        self.context.bind(name, loid, replace=True)

    def lookup(self, name: str) -> LOID:
        """Resolve a context name to a LOID."""
        return self.context.lookup(name)

    # ----------------------------------------------------------------- applications

    def create_class(
        self,
        name: str,
        instance_factory: str = "",
        factory: Optional[Callable[..., LegionObjectImpl]] = None,
        superclass: Union[LOID, str, None] = None,
        context_name: Optional[str] = None,
        **options: Any,
    ) -> Binding:
        """Derive a new user class (from LegionObject by default).

        ``factory`` (a callable) is registered in the implementation
        registry under ``instance_factory`` if given.  Returns the new
        class object's Binding and binds ``context_name`` (default
        ``classes/<name>``) in the name space.
        """
        if factory is not None:
            if not instance_factory:
                instance_factory = f"app.{name}"
            self.services.impls.register(instance_factory, factory, replace=True)
        if instance_factory:
            options.setdefault("instance_factory", instance_factory)
        if superclass is None:
            super_loid = self.core.loid("LegionObject")
        elif isinstance(superclass, str):
            super_loid = self.lookup(superclass)
        else:
            super_loid = superclass
        binding: Binding = self.call(super_loid, "Derive", name, options)
        self.bind_name(context_name or f"classes/{name}", binding.loid)
        return binding

    def create_instance(
        self,
        cls: Union[LOID, str],
        context_name: Optional[str] = None,
        **hints: Any,
    ) -> Binding:
        """Create() an instance of ``cls``; optionally bind a context name."""
        class_loid = self.lookup(cls) if isinstance(cls, str) else cls
        binding: Binding = self.call(class_loid, "Create", hints)
        if context_name:
            self.bind_name(context_name, binding.loid)
        return binding

    # ------------------------------------------------------------------- metrics

    def reset_measurements(self) -> None:
        """Zero all counters (between warm-up and measurement phases).

        When tracing is on, recorded spans are dropped too, so a trace --
        like the counters -- covers only the measurement phase.
        """
        self.services.metrics.reset()
        self.network.stats.reset()
        if self.services.tracer is not None:
            self.services.tracer.clear()

    # ------------------------------------------------------------------- tracing

    def enable_tracing(self, recorder=None):
        """Install a causal-trace recorder; returns it.

        Every message sent from now on carries a
        :class:`~repro.trace.context.TraceContext` and every invocation,
        resolution, dispatch, and activation records a span.  Call with a
        prepared :class:`~repro.trace.SpanRecorder` to share one recorder
        between phases, or with nothing for a fresh active one.
        """
        from repro.trace.recorder import SpanRecorder

        if recorder is None:
            recorder = SpanRecorder(self.kernel)
        self.services.tracer = recorder
        self.network.tracer = recorder
        return recorder

    def disable_tracing(self) -> None:
        """Return to the zero-overhead no-op mode (spans are discarded)."""
        self.services.tracer = None
        self.network.tracer = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<LegionSystem sites={len(self.sites)} "
            f"hosts={len(self.host_servers)} t={self.kernel.now:.1f}>"
        )
