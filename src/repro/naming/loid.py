"""Legion Object Identifiers (paper section 3.2, Fig. 12).

An LOID is ``class_id (64 bits) | class_specific (64 bits) | public_key
(P bits)``.  The paper leaves P open ("a constant whose size has yet to be
determined"); this reproduction fixes ``PUBLIC_KEY_BITS = 64`` and derives
keys deterministically from the identifier fields plus a per-system secret,
which gives every object a distinct, verifiable key without a real PKI
(the security model of ref [8] is out of scope; only its hooks are needed).

Identity conventions, straight from the paper:

* class objects have ``class_specific == 0``;
* an instance's LOID carries its class's ``class_id``, so the LOID of the
  class responsible for locating a non-class object is computed by field
  surgery: keep ``class_id``, zero ``class_specific`` (section 4.1.3);
* LegionClass is the authority handing out unique class identifiers.

Routing and table lookups key on ``identity`` -- the (class_id,
class_specific) pair -- because the public key is a credential, not a
locator.  Full equality includes the key, so a forged LOID with a wrong
key never compares equal to the genuine one.
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass
from typing import Iterator, Tuple

from repro.errors import InvalidLOID

_U64 = (1 << 64) - 1

#: P, the public-key width in bits.  The paper leaves this constant open.
PUBLIC_KEY_BITS = 64
_KEY_MASK = (1 << PUBLIC_KEY_BITS) - 1

#: Reserved class identifiers for the core Abstract classes (section 2.1.3).
#: LegionClass itself must be locatable before any allocation can happen,
#: so the core identifiers are compile-time constants of the system.
CLASS_ID_LEGION_OBJECT = 1
CLASS_ID_LEGION_CLASS = 2
CLASS_ID_LEGION_HOST = 3
CLASS_ID_LEGION_MAGISTRATE = 4
CLASS_ID_LEGION_BINDING_AGENT = 5
CLASS_ID_LEGION_SCHEDULER = 6
FIRST_USER_CLASS_ID = 64


def derive_public_key(class_id: int, class_specific: int, secret: int = 0) -> int:
    """The deterministic P-bit key for an identity under ``secret``."""
    digest = hashlib.sha256(
        f"{secret}:{class_id}:{class_specific}".encode()
    ).digest()
    return int.from_bytes(digest[: PUBLIC_KEY_BITS // 8], "big") & _KEY_MASK


@dataclass(frozen=True, order=True, slots=True)
class LOID:
    """A Legion Object Identifier.

    Immutable and hashable; usable directly as a dict key.  Compare with
    ``==`` for full identity (including key) and via :attr:`identity` for
    locator purposes.
    """

    class_id: int
    class_specific: int
    public_key: int = 0

    def __post_init__(self) -> None:
        if not (0 <= self.class_id <= _U64):
            raise InvalidLOID(f"class_id {self.class_id} exceeds 64 bits")
        if not (0 <= self.class_specific <= _U64):
            raise InvalidLOID(f"class_specific {self.class_specific} exceeds 64 bits")
        if not (0 <= self.public_key <= _KEY_MASK):
            raise InvalidLOID(f"public_key exceeds {PUBLIC_KEY_BITS} bits")

    # -- structure -----------------------------------------------------------

    @property
    def identity(self) -> Tuple[int, int]:
        """The (class_id, class_specific) pair used for routing lookups."""
        return (self.class_id, self.class_specific)

    @property
    def is_class(self) -> bool:
        """Class objects conventionally have a zero class-specific field."""
        return self.class_specific == 0

    def class_identity(self) -> Tuple[int, int]:
        """Identity of the class responsible for locating this object.

        The field surgery of section 4.1.3: same class_id, zero
        class_specific.  For a class object this is its own identity --
        responsibility for *classes* is resolved through LegionClass's
        responsibility pairs instead.
        """
        return (self.class_id, 0)

    # -- wire form -------------------------------------------------------------

    def pack(self) -> bytes:
        """(128+P)/8 bytes: class_id | class_specific | public_key."""
        return (
            self.class_id.to_bytes(8, "big")
            + self.class_specific.to_bytes(8, "big")
            + self.public_key.to_bytes(PUBLIC_KEY_BITS // 8, "big")
        )

    @classmethod
    def unpack(cls, data: bytes) -> "LOID":
        """Inverse of :meth:`pack`."""
        expected = 16 + PUBLIC_KEY_BITS // 8
        if len(data) != expected:
            raise InvalidLOID(f"LOID wire form must be {expected} bytes, got {len(data)}")
        return cls(
            class_id=int.from_bytes(data[:8], "big"),
            class_specific=int.from_bytes(data[8:16], "big"),
            public_key=int.from_bytes(data[16:], "big"),
        )

    # -- construction ------------------------------------------------------------

    @classmethod
    def for_class(cls, class_id: int, secret: int = 0) -> "LOID":
        """The LOID of the class object with identifier ``class_id``."""
        return cls(class_id, 0, derive_public_key(class_id, 0, secret))

    @classmethod
    def for_instance(cls, class_id: int, sequence: int, secret: int = 0) -> "LOID":
        """The LOID of instance ``sequence`` of class ``class_id``."""
        if sequence == 0:
            raise InvalidLOID("instance class_specific must be non-zero (0 marks classes)")
        return cls(class_id, sequence, derive_public_key(class_id, sequence, secret))

    def verify_key(self, secret: int) -> bool:
        """Whether this LOID's key is genuine under the system secret."""
        return self.public_key == derive_public_key(
            self.class_id, self.class_specific, secret
        )

    def __str__(self) -> str:
        kind = "C" if self.is_class else "O"
        return f"{kind}<{self.class_id}.{self.class_specific}>"


class LOIDAllocator:
    """Per-class LOID factory: sequence-numbered class-specific fields.

    "it is likely that the Class Specific field will often be used by
    classes as a sequence number to guarantee the generation of unique
    LOID's" (section 3.2).  One allocator per class object.
    """

    def __init__(self, class_id: int, secret: int = 0, start: int = 1) -> None:
        if start < 1:
            raise InvalidLOID("instance sequences start at 1; 0 marks class objects")
        self.class_id = class_id
        self.secret = secret
        self._counter = itertools.count(start)

    def next_instance(self) -> LOID:
        """A fresh, unique instance LOID for this class."""
        return LOID.for_instance(self.class_id, next(self._counter), self.secret)

    def __iter__(self) -> Iterator[LOID]:
        while True:
            yield self.next_instance()
