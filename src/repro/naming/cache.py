"""Binding caches: the LRU+TTL store everything in Legion leans on.

"Each Legion object will maintain a cache of bindings.  Therefore, an
object's Binding Agent will only be consulted on a local cache miss, or
when a stale binding is encountered." (section 5.2.1)

The same structure backs the per-object cache in the communication layer,
the Binding Agent caches (Fig. 15), and any intermediate tier of a
combining tree.  Hit/miss/eviction counters are first-class because the
Section 5 scalability experiments are *about* these numbers.

Lookups key on ``LOID.identity`` (class_id, class_specific): the public key
is a credential, not a locator, and an object whose key you cannot verify
still has exactly one physical location.
"""

from __future__ import annotations

import heapq
import math
from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.naming.binding import Binding
from repro.naming.loid import LOID


@dataclass
class CacheStats:
    """Counters for one cache; reset-able between experiment phases."""

    hits: int = 0
    misses: int = 0
    expired: int = 0
    evictions: int = 0
    invalidations: int = 0
    inserts: int = 0

    @property
    def lookups(self) -> int:
        """Total lookups (hits + misses; expired entries count as misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups that hit; 0.0 when no lookups happened."""
        total = self.lookups
        return self.hits / total if total else 0.0

    def reset(self) -> None:
        """Zero every counter."""
        self.hits = self.misses = self.expired = 0
        self.evictions = self.invalidations = self.inserts = 0


class BindingCache:
    """A bounded LRU cache of bindings with TTL awareness.

    Parameters
    ----------
    capacity:
        Maximum entries; the least recently used entry is evicted on
        overflow.  ``None`` means unbounded (used by class objects, whose
        "cache" is really their authoritative logical table's shadow).
    """

    def __init__(self, capacity: Optional[int] = 256) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1 or None, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[Tuple[int, int], Binding]" = OrderedDict()
        #: Lazy min-heap of (expires_at, key) for finite-TTL entries, so
        #: purge_expired is O(expired·log n) instead of a full O(n) scan.
        #: Entries go stale on replace/invalidate/evict and are skipped on
        #: pop (the live binding's own expiry is always re-checked).
        self._expiry: List[Tuple[float, Tuple[int, int]]] = []
        #: Latest simulated time this cache has observed (monotone in the
        #: simulation); lets time-less protocols like ``in`` stay honest.
        self._last_now = 0.0
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, loid: LOID) -> bool:
        """Presence of a *live* entry, judged at the last observed time.

        An entry already expired at the most recent ``now`` this cache saw
        (via :meth:`lookup` / :meth:`purge_expired`) is reported absent --
        it can never be returned by a lookup again, so claiming membership
        would be a lie.  Simulated time is monotone, so this is safe.
        """
        binding = self._entries.get(loid.identity)
        return binding is not None and binding.valid_at(self._last_now)

    def lookup(self, loid: LOID, now: float) -> Optional[Binding]:
        """The cached binding for ``loid``, or None on miss/expiry.

        An expired entry is removed and counted both as ``expired`` and as
        a miss (the caller must re-resolve either way).
        """
        if now > self._last_now:
            self._last_now = now
        key = loid.identity
        binding = self._entries.get(key)
        if binding is None:
            self.stats.misses += 1
            return None
        if not binding.valid_at(now):
            del self._entries[key]
            self.stats.expired += 1
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return binding

    def insert(self, binding: Binding) -> None:
        """Add/replace the entry for the binding's LOID (AddBinding path)."""
        key = binding.loid.identity
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = binding
        if binding.expires_at != math.inf:
            heapq.heappush(self._expiry, (binding.expires_at, key))
            # Replacements/invalidations leave dead heap entries behind;
            # rebuild when they clearly dominate so the heap stays O(n).
            if len(self._expiry) > 2 * len(self._entries) + 64:
                self._rebuild_expiry()
        self.stats.inserts += 1
        if self.capacity is not None and len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def invalidate(self, loid: LOID) -> bool:
        """Drop the entry for ``loid`` if present (InvalidateBinding(LOID))."""
        removed = self._entries.pop(loid.identity, None) is not None
        if removed:
            self.stats.invalidations += 1
        return removed

    def invalidate_exact(self, binding: Binding) -> bool:
        """Drop the entry only if it matches ``binding`` exactly.

        This is the second overload of InvalidateBinding (section 3.6):
        a caller holding a stale binding must not blow away a *newer*
        binding someone else already refreshed.
        """
        key = binding.loid.identity
        current = self._entries.get(key)
        if current is not None and current == binding:
            del self._entries[key]
            self.stats.invalidations += 1
            return True
        return False

    def purge_expired(self, now: float) -> int:
        """Remove all expired entries; returns how many were dropped.

        O(expired·log n): walks the expiry heap instead of scanning every
        entry (never-expiring entries are not in the heap at all).
        """
        if now > self._last_now:
            self._last_now = now
        dropped = 0
        expiry = self._expiry
        entries = self._entries
        while expiry and expiry[0][0] <= now:
            _, key = heapq.heappop(expiry)
            binding = entries.get(key)
            # The heap entry may be stale (replaced/invalidated binding);
            # only delete when the *live* binding really is expired.
            if binding is not None and not binding.valid_at(now):
                del entries[key]
                dropped += 1
        self.stats.expired += dropped
        return dropped

    def _rebuild_expiry(self) -> None:
        self._expiry = [
            (b.expires_at, k)
            for k, b in self._entries.items()
            if b.expires_at != math.inf
        ]
        heapq.heapify(self._expiry)

    def clear(self) -> None:
        """Empty the cache (counters are preserved)."""
        self._entries.clear()
        self._expiry.clear()

    def entries(self) -> Tuple[Binding, ...]:
        """A snapshot of current entries, LRU-first."""
        return tuple(self._entries.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        cap = "∞" if self.capacity is None else str(self.capacity)
        return (
            f"<BindingCache {len(self._entries)}/{cap} "
            f"hit_rate={self.stats.hit_rate:.2f}>"
        )
