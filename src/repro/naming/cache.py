"""Binding caches: the LRU+TTL store everything in Legion leans on.

"Each Legion object will maintain a cache of bindings.  Therefore, an
object's Binding Agent will only be consulted on a local cache miss, or
when a stale binding is encountered." (section 5.2.1)

The same structure backs the per-object cache in the communication layer,
the Binding Agent caches (Fig. 15), and any intermediate tier of a
combining tree.  Hit/miss/eviction counters are first-class because the
Section 5 scalability experiments are *about* these numbers.

Lookups key on ``LOID.identity`` (class_id, class_specific): the public key
is a credential, not a locator, and an object whose key you cannot verify
still has exactly one physical location.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.naming.binding import Binding
from repro.naming.loid import LOID


@dataclass
class CacheStats:
    """Counters for one cache; reset-able between experiment phases."""

    hits: int = 0
    misses: int = 0
    expired: int = 0
    evictions: int = 0
    invalidations: int = 0
    inserts: int = 0

    @property
    def lookups(self) -> int:
        """Total lookups (hits + misses; expired entries count as misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups that hit; 0.0 when no lookups happened."""
        total = self.lookups
        return self.hits / total if total else 0.0

    def reset(self) -> None:
        """Zero every counter."""
        self.hits = self.misses = self.expired = 0
        self.evictions = self.invalidations = self.inserts = 0


class BindingCache:
    """A bounded LRU cache of bindings with TTL awareness.

    Parameters
    ----------
    capacity:
        Maximum entries; the least recently used entry is evicted on
        overflow.  ``None`` means unbounded (used by class objects, whose
        "cache" is really their authoritative logical table's shadow).
    """

    def __init__(self, capacity: Optional[int] = 256) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1 or None, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[Tuple[int, int], Binding]" = OrderedDict()
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, loid: LOID) -> bool:
        return loid.identity in self._entries

    def lookup(self, loid: LOID, now: float) -> Optional[Binding]:
        """The cached binding for ``loid``, or None on miss/expiry.

        An expired entry is removed and counted both as ``expired`` and as
        a miss (the caller must re-resolve either way).
        """
        key = loid.identity
        binding = self._entries.get(key)
        if binding is None:
            self.stats.misses += 1
            return None
        if not binding.valid_at(now):
            del self._entries[key]
            self.stats.expired += 1
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return binding

    def insert(self, binding: Binding) -> None:
        """Add/replace the entry for the binding's LOID (AddBinding path)."""
        key = binding.loid.identity
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = binding
        self.stats.inserts += 1
        if self.capacity is not None and len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def invalidate(self, loid: LOID) -> bool:
        """Drop the entry for ``loid`` if present (InvalidateBinding(LOID))."""
        removed = self._entries.pop(loid.identity, None) is not None
        if removed:
            self.stats.invalidations += 1
        return removed

    def invalidate_exact(self, binding: Binding) -> bool:
        """Drop the entry only if it matches ``binding`` exactly.

        This is the second overload of InvalidateBinding (section 3.6):
        a caller holding a stale binding must not blow away a *newer*
        binding someone else already refreshed.
        """
        key = binding.loid.identity
        current = self._entries.get(key)
        if current is not None and current == binding:
            del self._entries[key]
            self.stats.invalidations += 1
            return True
        return False

    def purge_expired(self, now: float) -> int:
        """Remove all expired entries; returns how many were dropped."""
        stale = [k for k, b in self._entries.items() if not b.valid_at(now)]
        for k in stale:
            del self._entries[k]
        self.stats.expired += len(stale)
        return len(stale)

    def clear(self) -> None:
        """Empty the cache (counters are preserved)."""
        self._entries.clear()

    def entries(self) -> Tuple[Binding, ...]:
        """A snapshot of current entries, LRU-first."""
        return tuple(self._entries.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        cap = "∞" if self.capacity is None else str(self.capacity)
        return (
            f"<BindingCache {len(self._entries)}/{cap} "
            f"hit_rate={self.stats.hit_rate:.2f}>"
        )
