"""Contexts: program-level string names → LOIDs (paper section 4.1).

"A user will write a Legion application program in her favorite language,
and will typically name Legion objects with string names.  The program is
compiled within a particular 'context' by a Legion-aware compiler.  The
compiler uses the context to map string names to LOIDs."

We reproduce the context as a hierarchical, slash-separated namespace
(``"/home/alice/matrix"``), because that is how the single persistent name
space the paper promises is most naturally presented to users.  Contexts
can be nested: a sub-context is just another Context mounted at a prefix.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import ContextError
from repro.naming.loid import LOID


def _split(name: str) -> List[str]:
    parts = [p for p in name.strip("/").split("/") if p]
    if not parts:
        raise ContextError(f"empty context name {name!r}")
    for p in parts:
        if p in (".", ".."):
            raise ContextError(f"relative component {p!r} not allowed in {name!r}")
    return parts


class Context:
    """A hierarchical name space mapping string names to LOIDs.

    Methods mirror a tiny filesystem: ``bind``, ``lookup``, ``unbind``,
    ``list``, ``mount``.  All names are slash-separated paths; leading and
    trailing slashes are ignored.
    """

    def __init__(self, name: str = "/") -> None:
        self.name = name
        self._entries: Dict[str, LOID] = {}
        self._mounts: Dict[str, "Context"] = {}

    # -- resolution ------------------------------------------------------------

    def _route(self, name: str) -> Tuple[Optional["Context"], str]:
        """(mounted sub-context, remaining path) or (None, flat key)."""
        parts = _split(name)
        if parts[0] in self._mounts and len(parts) > 1:
            return self._mounts[parts[0]], "/".join(parts[1:])
        return None, "/".join(parts)

    def bind(self, name: str, loid: LOID, replace: bool = False) -> None:
        """Associate ``name`` with ``loid``.

        Raises :class:`ContextError` if the name is taken and ``replace``
        is False.
        """
        sub, rest = self._route(name)
        if sub is not None:
            sub.bind(rest, loid, replace)
            return
        if rest in self._entries and not replace:
            raise ContextError(f"name {rest!r} already bound in context {self.name!r}")
        if rest in self._mounts:
            raise ContextError(f"name {rest!r} is a sub-context in {self.name!r}")
        self._entries[rest] = loid

    def lookup(self, name: str) -> LOID:
        """The LOID bound to ``name``; raises :class:`ContextError` if absent."""
        sub, rest = self._route(name)
        if sub is not None:
            return sub.lookup(rest)
        try:
            return self._entries[rest]
        except KeyError:
            raise ContextError(
                f"name {rest!r} not bound in context {self.name!r}"
            ) from None

    def try_lookup(self, name: str) -> Optional[LOID]:
        """Like :meth:`lookup` but returns None instead of raising."""
        try:
            return self.lookup(name)
        except ContextError:
            return None

    def unbind(self, name: str) -> LOID:
        """Remove and return the binding for ``name``."""
        sub, rest = self._route(name)
        if sub is not None:
            return sub.unbind(rest)
        try:
            return self._entries.pop(rest)
        except KeyError:
            raise ContextError(
                f"name {rest!r} not bound in context {self.name!r}"
            ) from None

    # -- structure ----------------------------------------------------------------

    def mount(self, prefix: str, sub: "Context") -> None:
        """Attach ``sub`` so its names appear under ``prefix/``."""
        parts = _split(prefix)
        if len(parts) != 1:
            raise ContextError(f"mount prefix must be a single component, got {prefix!r}")
        key = parts[0]
        if key in self._mounts:
            raise ContextError(f"prefix {key!r} already mounted in {self.name!r}")
        if key in self._entries:
            raise ContextError(f"prefix {key!r} already a bound name in {self.name!r}")
        self._mounts[key] = sub

    def subcontext(self, prefix: str) -> "Context":
        """Create, mount, and return a fresh sub-context at ``prefix``."""
        sub = Context(name=f"{self.name.rstrip('/')}/{prefix}")
        self.mount(prefix, sub)
        return sub

    def list(self, prefix: str = "") -> List[str]:
        """All full names below ``prefix`` (both entries and mounts)."""
        if prefix:
            parts = _split(prefix)
            sub = self._mounts.get(parts[0])
            if sub is None:
                raise ContextError(f"{parts[0]!r} is not a sub-context of {self.name!r}")
            rest = "/".join(parts[1:])
            return [f"{parts[0]}/{n}" for n in sub.list(rest)]
        names = sorted(self._entries)
        for key, sub in sorted(self._mounts.items()):
            names.extend(f"{key}/{n}" for n in sub.list())
        return names

    def __len__(self) -> int:
        return len(self._entries) + sum(len(s) for s in self._mounts.values())

    def __iter__(self) -> Iterator[str]:
        return iter(self.list())

    def __contains__(self, name: str) -> bool:
        return self.try_lookup(name) is not None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Context {self.name!r} entries={len(self._entries)} mounts={len(self._mounts)}>"
