"""Context objects: the persistent name space as Legion objects.

"A single persistent name space unites the objects in the Legion system"
(section 1).  The :class:`~repro.naming.context.Context` class is the
local, in-process form (a compiler's view, section 4.1); this module
provides the *distributed* form: a context that is itself a Legion object,
so directories can live at different sites, persist through deactivation,
and be shared by name like everything else.

A :class:`ContextObjectImpl` maps single path components to LOIDs.  A
component may name another context object, and the recursive operations
(LookupPath / BindPath) hop across the directory graph with ordinary
method invocations -- a lookup of ``a/b/leaf`` may touch three objects on
three sites.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import ContextError
from repro.core.method import InvocationContext
from repro.core.object_base import LegionObjectImpl, legion_method
from repro.naming.loid import LOID


def _split(path: str) -> List[str]:
    parts = [p for p in path.strip("/").split("/") if p]
    if not parts:
        raise ContextError(f"empty context path {path!r}")
    for part in parts:
        if part in (".", ".."):
            raise ContextError(f"relative component {part!r} not allowed")
    return parts


class ContextObjectImpl(LegionObjectImpl):
    """One directory of the distributed name space."""

    def __init__(self, name: str = "/") -> None:
        self.name = name
        #: component → (LOID, is_subcontext)
        self.entries: Dict[str, Tuple[LOID, bool]] = {}

    def persistent_attributes(self) -> List[str]:
        return ["name", "entries"]

    # -- single-component operations -------------------------------------------

    @legion_method("Bind(string, LOID)")
    def bind(self, component: str, loid: LOID) -> None:
        """Bind one component in this directory (no slashes)."""
        self._bind_local(component, loid, is_subcontext=False)

    @legion_method("Mount(string, LOID)")
    def mount(self, component: str, context: LOID) -> None:
        """Mount another context object under ``component``."""
        self._bind_local(component, context, is_subcontext=True)

    def _bind_local(self, component: str, loid: LOID, is_subcontext: bool) -> None:
        (part,) = _split(component) if "/" not in component else (None,)
        if part is None:
            raise ContextError(
                f"{component!r} has path separators; use BindPath for paths"
            )
        if part in self.entries:
            raise ContextError(f"{part!r} already bound in context {self.name!r}")
        self.entries[part] = (loid, is_subcontext)

    @legion_method("LOID Lookup(string)")
    def lookup(self, component: str) -> LOID:
        """Resolve one component of this directory."""
        entry = self.entries.get(component)
        if entry is None:
            raise ContextError(
                f"{component!r} not bound in context {self.name!r}"
            )
        return entry[0]

    @legion_method("Unbind(string)")
    def unbind(self, component: str) -> None:
        """Remove one component (idempotent errors are real errors here)."""
        if component not in self.entries:
            raise ContextError(
                f"{component!r} not bound in context {self.name!r}"
            )
        del self.entries[component]

    @legion_method("list List()")
    def list_entries(self) -> List[Tuple[str, bool]]:
        """(component, is_subcontext) pairs, sorted."""
        return sorted(
            (name, is_sub) for name, (_loid, is_sub) in self.entries.items()
        )

    # -- recursive path operations -----------------------------------------------

    @legion_method("LOID LookupPath(string)")
    def lookup_path(self, path: str, *, ctx: Optional[InvocationContext] = None):
        """Resolve a slash path, hopping across context objects.

        Each intermediate component must be a mounted sub-context; the
        hop is a real LookupPath invocation on that (possibly remote,
        possibly Inert -- it activates) context object.
        """
        parts = _split(path)
        head, rest = parts[0], parts[1:]
        entry = self.entries.get(head)
        if entry is None:
            raise ContextError(f"{head!r} not bound in context {self.name!r}")
        loid, is_subcontext = entry
        if not rest:
            return loid
        if not is_subcontext:
            raise ContextError(
                f"{head!r} in context {self.name!r} is a leaf, not a sub-context"
            )
        env = ctx.nested_env(self.loid) if ctx else self.own_env()
        result = yield from self.runtime.invoke(
            loid, "LookupPath", "/".join(rest), env=env
        )
        return result

    @legion_method("BindPath(string, LOID)")
    def bind_path(self, path: str, target: LOID, *, ctx: Optional[InvocationContext] = None):
        """Bind a leaf at the end of an existing directory chain."""
        parts = _split(path)
        if len(parts) == 1:
            self._bind_local(parts[0], target, is_subcontext=False)
            return
        head, rest = parts[0], parts[1:]
        entry = self.entries.get(head)
        if entry is None or not entry[1]:
            raise ContextError(
                f"{head!r} is not a sub-context of {self.name!r}"
            )
        env = ctx.nested_env(self.loid) if ctx else self.own_env()
        yield from self.runtime.invoke(
            entry[0], "BindPath", "/".join(rest), target, env=env
        )
