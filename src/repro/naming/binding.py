"""Bindings: first-class (LOID, Object Address, expiry) triples (section 3.5).

"A binding consists of an LOID, an Object Address, and a field that
specifies the time that the binding becomes invalid.  This field may be set
to some value that indicates that the binding will never become explicitly
invalid.  Bindings are first class entities that can be passed around the
system and cached within objects."
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.naming.loid import LOID
from repro.net.address import ObjectAddress

#: The sentinel expiry meaning "never becomes explicitly invalid".
NEVER_EXPIRES: float = math.inf


@dataclass(frozen=True, slots=True)
class Binding:
    """An immutable LOID → Object Address binding with an expiry time.

    Note that a binding being unexpired does *not* guarantee the Object
    Address still works: the paper explicitly expects stale bindings
    (section 4.1.4) and places detection in the communication layer.
    Expiry is a proactive hint; delivery failure is the ground truth.
    """

    loid: LOID
    address: ObjectAddress
    expires_at: float = NEVER_EXPIRES

    def valid_at(self, now: float) -> bool:
        """Whether the binding is unexpired at simulated time ``now``."""
        return now < self.expires_at

    def refreshed(self, address: ObjectAddress, expires_at: float = NEVER_EXPIRES) -> "Binding":
        """A new binding for the same LOID with a fresh address/expiry."""
        return Binding(self.loid, address, expires_at)

    def __str__(self) -> str:
        exp = "∞" if self.expires_at == NEVER_EXPIRES else f"{self.expires_at:.1f}"
        return f"{self.loid}→{self.address}@{exp}"
