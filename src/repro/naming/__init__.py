"""Naming: LOIDs, bindings, binding caches, and string-name contexts.

The Legion naming system (paper sections 3.2 and 3.5) has three layers:

* :class:`LOID` -- the location-independent Legion Object Identifier:
  64-bit class identifier, 64-bit class-specific field, and a P-bit public
  key (Fig. 12).  LegionClass hands out class identifiers; classes fill in
  the class-specific field (typically a sequence number) for instances.
* :class:`Binding` -- the first-class (LOID, Object Address, expiry)
  triple that can be passed around and cached anywhere in the system.
* :class:`BindingCache` -- the LRU+TTL cache every object, Binding Agent,
  and class keeps; its hit/miss counters feed the Section 5 experiments.
* :class:`Context` -- the compile-time map from program-level string names
  to LOIDs (section 4.1: "the compiler uses the context to map string
  names to LOIDs").
"""

from repro.naming.loid import LOID, PUBLIC_KEY_BITS, LOIDAllocator
from repro.naming.binding import Binding, NEVER_EXPIRES
from repro.naming.cache import BindingCache, CacheStats
from repro.naming.context import Context
from repro.naming.context_object import ContextObjectImpl

__all__ = [
    "LOID",
    "PUBLIC_KEY_BITS",
    "LOIDAllocator",
    "Binding",
    "NEVER_EXPIRES",
    "BindingCache",
    "CacheStats",
    "Context",
    "ContextObjectImpl",
]
