"""Load-adaptive class cloning (closing the loop on section 5.2.2).

The paper observes that clones "arbitrarily reduce the load" on a hot
class but leaves *when* to clone to the administrator.  This package
closes the loop on simulated time: a :class:`~repro.autoscale.monitor.
LoadMonitor` turns the metrics counters (and, optionally, causal-trace
ledgers) into per-component request rates and queue depths, and a
:class:`~repro.autoscale.controller.CloneController` spawns clones onto
least-loaded hosts above a high-water mark and drains/retires them below
a low-water mark, with hysteresis and a cooldown against flapping.
"""

from repro.autoscale.controller import (
    AutoscaleConfig,
    CloneController,
    build_placement_agent,
)
from repro.autoscale.monitor import LoadMonitor, LoadSample
from repro.autoscale.router import ClonePoolRouter

__all__ = [
    "AutoscaleConfig",
    "CloneController",
    "ClonePoolRouter",
    "LoadMonitor",
    "LoadSample",
    "build_placement_agent",
]
