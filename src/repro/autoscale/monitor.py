"""LoadMonitor: request rates and queue depths from existing telemetry.

The monitor owns no wires and sends no messages: it diffs the cumulative
:class:`~repro.metrics.counters.MetricsRegistry` counters between samples
to get per-component request *rates* (requests per simulated ms), and
reads server-side queue depths (``ObjectServer.in_flight``) straight out
of the host process tables.  Both sources already exist for the Section 5
experiments, so observing the system costs the system nothing -- the
controller's probes and spawns are the only traffic autoscaling adds.

A trace-derived cross-check is available too: when a causal trace is
active, :meth:`LoadMonitor.rates_from_ledger` reads the same rates out of
a :class:`~repro.trace.ledger.LoadLedger`, span by span.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional

from repro.metrics.counters import ComponentKind, MetricsRegistry
from repro.trace.ledger import LoadLedger


@dataclass
class LoadSample:
    """One observation: rates and queues at a simulated instant."""

    time: float
    #: component name → requests per simulated ms since the last sample.
    rates: Dict[str, float] = field(default_factory=dict)
    #: component name → requests dispatched but not yet replied to.
    queues: Dict[str, int] = field(default_factory=dict)
    #: component name → admission sheds per simulated ms since the last
    #: sample (repro.flow).  Empty when no admission control is active.
    sheds: Dict[str, float] = field(default_factory=dict)

    def pool_rate(self, names: Iterable[str]) -> float:
        """Aggregate rate over a set of components (a clone pool)."""
        return sum(self.rates.get(name, 0.0) for name in names)

    def pool_queue(self, names: Iterable[str]) -> int:
        """Aggregate queue depth over a set of components."""
        return sum(self.queues.get(name, 0) for name in names)

    def pool_shed_rate(self, names: Iterable[str]) -> float:
        """Aggregate shed rate over a set of components (a clone pool)."""
        return sum(self.sheds.get(name, 0.0) for name in names)


class LoadMonitor:
    """Sample per-component load for one component kind.

    ``sample()`` is deterministic given the simulation state: it reads
    the shared registry and the process tables, both of which evolve only
    on simulated events.
    """

    def __init__(self, system, kind: ComponentKind = ComponentKind.CLASS_OBJECT) -> None:
        self.system = system
        self.kind = kind
        self._last_counts: Dict[str, int] = {}
        self._last_sheds: Dict[str, int] = {}
        self._last_time: float = system.kernel.now

    def sample(self) -> LoadSample:
        """Rates since the previous sample, plus current queue depths.

        Shed rates ride along: a server at capacity serves (and counts)
        at most its capacity in ``requests``, so under admission control
        the *demand* signal lives in the shed counter -- queue depth alone
        would read a saturated-but-bounded server as healthy.
        """
        now = self.system.kernel.now
        metrics = self.system.services.metrics
        counts = metrics.snapshot(self.kind)
        shed_counts = metrics.snapshot(self.kind, MetricsRegistry.SHED)
        window = now - self._last_time
        rates: Dict[str, float] = {}
        sheds: Dict[str, float] = {}
        if window > 0:
            for name, count in counts.items():
                delta = count - self._last_counts.get(name, 0)
                if delta < 0:
                    delta = count  # counters were reset mid-flight; re-baseline
                rates[name] = delta / window
            for name, count in shed_counts.items():
                delta = count - self._last_sheds.get(name, 0)
                if delta < 0:
                    delta = count
                if delta:
                    sheds[name] = delta / window
        self._last_counts = counts
        self._last_sheds = shed_counts
        self._last_time = now
        return LoadSample(time=now, rates=rates, queues=self.queue_depths(), sheds=sheds)

    def queue_depths(self) -> Dict[str, int]:
        """Server-side in-flight dispatch counts for live components."""
        queues: Dict[str, int] = {}
        for host_id in sorted(self.system.host_servers):
            host_server = self.system.host_servers[host_id]
            for entry in host_server.impl.processes.running():
                server = entry.server
                if server.component.kind is self.kind and server.active:
                    queues[server.component.name] = server.in_flight
        return queues

    def rates_from_ledger(
        self, ledger: LoadLedger, prefix: Optional[str] = None
    ) -> Dict[str, float]:
        """The trace's view of the same rates (component name → req/ms).

        Labels in the ledger are "kind:name"; this strips the kind prefix
        so the keys line up with :meth:`sample`'s.
        """
        prefix = prefix if prefix is not None else f"{self.kind.value}:"
        return {
            comp[len(prefix):]: rate
            for comp, rate in ledger.rates(prefix).items()
        }
