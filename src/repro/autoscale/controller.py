"""CloneController: the closed loop from load to clone-pool size.

Policy (classic hysteresis + cooldown):

* Every ``tick`` simulated ms, sample the pool's aggregate request rate
  (parent class + live clones) from the :class:`LoadMonitor`.
* If the per-member rate exceeds ``high_water``, grow the pool toward
  ``ceil(total / high_water)`` members, placing each new clone through
  the scheduling agent's ``ChoosePlacement`` (least-loaded accepting
  host) -- unless a shrink happened within ``cooldown`` ms.
* If the per-member rate falls below ``low_water`` (the hysteresis gap),
  retire the youngest clone via ``RetireClone`` -- the clone leaves the
  routing pool immediately, drains its in-flight work, and is folded
  back into an OPR -- unless a spawn happened within ``cooldown`` ms.

Everything runs on simulated time from seeded state, so a run is
byte-identical across ``--jobs 1`` and ``--jobs N``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import LegionError, ProcessKilled
from repro.autoscale.monitor import LoadMonitor
from repro.core.server import ObjectServer
from repro.metrics.counters import ComponentKind
from repro.naming.binding import Binding
from repro.scheduling.agent import LeastLoadedPlacementAgent
from repro.simkernel.kernel import Timeout


@dataclass(frozen=True)
class AutoscaleConfig:
    """Controller knobs.  ``high_water``/``low_water`` are requests per
    simulated ms *per pool member*; the gap between them is the
    hysteresis band."""

    high_water: float
    low_water: float
    cooldown: float = 50.0
    tick: float = 10.0
    min_clones: int = 0
    max_clones: int = 8
    #: Admission sheds per simulated ms per member that force a scale-up
    #: even when the served rate sits below ``high_water``.  A server at
    #: capacity *serves* at most its capacity, so under flow control the
    #: demand signal lives in the shed counter; the default (inf) keeps
    #: the historical served-rate-only policy.
    shed_water: float = float("inf")

    def __post_init__(self) -> None:
        if self.low_water >= self.high_water:
            raise LegionError(
                f"hysteresis gap required: low_water {self.low_water} must be "
                f"< high_water {self.high_water}"
            )
        if self.shed_water <= 0:
            raise LegionError(f"shed_water must be > 0, got {self.shed_water}")
        if self.tick <= 0:
            raise LegionError(f"tick must be positive, got {self.tick}")
        if self.cooldown < 0:
            raise LegionError(f"cooldown must be >= 0, got {self.cooldown}")
        if not 0 <= self.min_clones <= self.max_clones:
            raise LegionError(
                f"need 0 <= min_clones <= max_clones, got "
                f"{self.min_clones}..{self.max_clones}"
            )


def build_placement_agent(system, name: str = "placement") -> ObjectServer:
    """Start a LeastLoadedPlacementAgent as a real Legion object.

    Registered out-of-band under StandardScheduler (the same adoption
    path Host Objects and Magistrates use, section 4.2.1), knowing every
    site's magistrate.
    """
    scheduler_class = system.standard_classes["StandardScheduler"]
    magistrates = [
        system.magistrates[site].loid for site in sorted(system.magistrates)
    ]
    impl = LeastLoadedPlacementAgent(magistrates)
    loid = scheduler_class.impl._allocate_instance_loid()
    server = ObjectServer(
        system.services,
        loid,
        impl,
        host=system.site_hosts[system.sites[0].name][0],
        component_kind=ComponentKind.SCHEDULER,
        component_name=name,
    )
    system.call(scheduler_class.loid, "RegisterOutOfBand", server.binding())
    return server


class CloneController:
    """One control loop bound to one (hot) class object."""

    def __init__(
        self,
        system,
        class_binding: Binding,
        config: AutoscaleConfig,
        placement: Optional[ObjectServer] = None,
        monitor: Optional[LoadMonitor] = None,
    ) -> None:
        self.system = system
        self.class_loid = class_binding.loid
        self.config = config
        self.placement_loid = placement.loid if placement is not None else None
        self.monitor = monitor or LoadMonitor(system)
        self.client = system.new_client(f"autoscaler-{class_binding.loid}")
        self.client.runtime.seed_binding(class_binding)
        #: (simulated time, "spawn" | "retire", clone LOID string) --
        #: the audit trail the property tests assert invariants over.
        self.actions: List[Tuple[float, str, str]] = []
        self._last_grow = float("-inf")
        self._last_shrink = float("-inf")
        self._proc = None

    # ---------------------------------------------------------------- lifecycle

    def start(self) -> None:
        """Spawn the control loop (idempotent)."""
        if self._proc is None:
            self._proc = self.system.kernel.spawn_process(
                self._loop(), name=f"autoscaler-{self.class_loid}"
            )

    def stop(self) -> None:
        """Kill the control loop."""
        if self._proc is not None:
            self._proc.kill()
            self._proc = None

    # -------------------------------------------------------------------- loop

    def _loop(self):
        yield Timeout(self.config.tick)
        while True:
            try:
                yield from self._tick()
            except ProcessKilled:
                raise  # stop() tore the loop down; ProcessKilled must win
            except LegionError:
                pass  # a tick interrupted by faults just runs again later
            yield Timeout(self.config.tick)

    def _tick(self):
        sample = self.monitor.sample()
        clones = yield from self.client.runtime.invoke(self.class_loid, "GetClones")
        members = [str(self.class_loid)] + [str(c.loid) for c in clones]
        total = sample.pool_rate(members)
        per_member = total / len(members)
        shed_per_member = sample.pool_shed_rate(members) / len(members)
        now = self.system.kernel.now
        cfg = self.config
        if (
            (per_member > cfg.high_water or shed_per_member > cfg.shed_water)
            and len(clones) < cfg.max_clones
            and now - self._last_shrink >= cfg.cooldown
        ):
            # Served + shed is the *demand* the pool must absorb; under
            # admission control the served rate alone is capacity-capped.
            demand = total + sample.pool_shed_rate(members)
            desired = max(
                len(members) + 1, math.ceil(demand / cfg.high_water)
            )
            desired = min(desired, cfg.max_clones + 1)
            for _ in range(desired - len(members)):
                yield from self._spawn_clone()
        elif (
            per_member < cfg.low_water
            and shed_per_member == 0.0
            and len(clones) > cfg.min_clones
            and now - self._last_grow >= cfg.cooldown
        ):
            # One retirement per tick (LIFO): scale-down is cheap to defer
            # and a drain mid-burst is expensive to regret.
            yield from self._retire_clone(clones[-1])

    def _spawn_clone(self):
        opts = {}
        if self.placement_loid is not None:
            magistrate, host = yield from self.client.runtime.invoke(
                self.placement_loid, "ChoosePlacement", self.class_loid, None
            )
            if magistrate is not None:
                opts["magistrate"] = magistrate
            if host is not None:
                opts["host"] = host
        binding = yield from self.client.runtime.invoke(
            self.class_loid, "Clone", opts
        )
        self._last_grow = self.system.kernel.now
        self.actions.append((self.system.kernel.now, "spawn", str(binding.loid)))
        return binding

    def _retire_clone(self, victim: Binding):
        yield from self.client.runtime.invoke(
            self.class_loid, "RetireClone", victim.loid
        )
        self._last_shrink = self.system.kernel.now
        self.actions.append((self.system.kernel.now, "retire", str(victim.loid)))
