"""ClonePoolRouter: client-side traffic spreading over a clone pool.

E4's lesson stands: server-side forwarding keeps naive clients correct,
but every envelope still lands on the parent first.  Bounded load needs
clone-aware clients.  The router keeps a client's view of one class's
clone pool fresh -- polling ``CloneEpoch()`` (one cheap call) and
re-fetching ``GetClonePool()`` only when the epoch moved -- and deals
requests over the pool round-robin.  Fetched bindings are seeded into
the client's cache, so routed calls go direct instead of resolving
through the binding hierarchy.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import LegionError, ProcessKilled
from repro.naming.binding import Binding
from repro.naming.loid import LOID
from repro.simkernel.kernel import Timeout


class ClonePoolRouter:
    """One client's rotating view of one class's clone pool."""

    def __init__(self, client, class_binding: Binding, refresh: float = 20.0) -> None:
        self.client = client
        self.class_binding = class_binding
        self.refresh = refresh
        self.pool: List[Binding] = [class_binding]
        self.epoch: Optional[int] = None
        self._rr = 0
        self._proc = None

    def choose(self) -> LOID:
        """The next pool member's LOID (credit-aware round-robin).

        Plain round-robin unless the client runtime holds credit windows
        (repro.flow): then the rotation skips members whose window is
        exhausted -- in-flight saturation is the earliest overload signal
        a client has -- falling back to strict round-robin when every
        member is saturated, so backpressure degrades to fairness.
        """
        pool = self.pool
        size = len(pool)
        credits = self.client.runtime.credits
        if credits is not None and size > 1:
            for offset in range(size):
                member = pool[(self._rr + offset) % size]
                element = member.address.elements[0]
                if credits.has_headroom(member.loid.identity, element):
                    self._rr += offset + 1
                    return member.loid
        member = pool[self._rr % size]
        self._rr += 1
        return member.loid

    def start(self) -> None:
        """Spawn the refresh loop (idempotent)."""
        if self._proc is None:
            # CloneEpoch/GetClonePool are idempotent metadata reads; when
            # the flow subsystem enables batching, concurrent routers on
            # one client runtime share a single upstream poll message.
            self.client.runtime.enable_batching("CloneEpoch", "GetClonePool")
            self._proc = self.client.services.kernel.spawn_process(
                self._loop(), name=f"clone-pool-{self.client.loid}"
            )

    def stop(self) -> None:
        """Kill the refresh loop."""
        if self._proc is not None:
            self._proc.kill()
            self._proc = None

    def _loop(self):
        while True:
            try:
                yield from self.refresh_once()
            except ProcessKilled:
                raise
            except LegionError:
                pass  # the parent is busy or unreachable; keep the old pool
            yield Timeout(self.refresh)

    def refresh_once(self):
        """One poll: re-fetch the pool only if the epoch moved."""
        epoch = yield from self.client.runtime.invoke(
            self.class_binding.loid, "CloneEpoch"
        )
        if epoch == self.epoch:
            return False
        epoch, pool = yield from self.client.runtime.invoke(
            self.class_binding.loid, "GetClonePool"
        )
        for binding in pool:
            self.client.runtime.seed_binding(binding)
        self.pool = pool
        self.epoch = epoch
        self._rr %= len(pool)
        return True
