"""Setup shim.

The sandboxed environment has setuptools 65 and no `wheel` package, so
PEP 660 editable installs (`pip install -e .` via pyproject only) fail with
"invalid command 'bdist_wheel'".  This shim lets pip fall back to the
legacy `setup.py develop` editable path.  All real metadata lives in
pyproject.toml.
"""

from setuptools import setup

setup()
