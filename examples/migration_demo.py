#!/usr/bin/env python
"""Migration: the Fig. 11 walk-through, narrated.

"A sample Jurisdiction comprised of three disks and three hosts ...
Objects A and B belong to the Jurisdiction and are moved between Active
and Inert states by the Magistrate.  Object A has been deactivated into an
Object Persistent Representation on Disk I, and B has been migrated from
Host 2 to Host 3 through Disk I."

This example recreates that figure on a live system, prints the vault and
process-table state at every step, and then goes beyond the figure with an
inter-jurisdiction Move() (Copy + Delete, section 3.8).

Run:  python examples/migration_demo.py
"""

from repro import LegionSystem, SiteSpec
from repro.jurisdiction.magistrate import ObjectState
from repro.workloads.apps import KVStoreImpl


def where_is(system, loid):
    """(host id, site) of the live process for loid, or None."""
    for host_server in system.host_servers.values():
        entry = host_server.impl.processes.find(loid)
        if entry is not None and not entry.crashed:
            host = host_server.impl.host_id
            return host, system.network.latency.site_of(host)
    return None


def show_state(system, label, objects):
    print(f"\n-- {label} --")
    for name, binding in objects.items():
        location = where_is(system, binding.loid)
        state = f"ACTIVE on host {location[0]} ({location[1]})" if location else "INERT"
        print(f"   {name}: {state}")
    for site, jurisdiction in system.jurisdictions.items():
        vault = jurisdiction.vault
        disks = {s.name: len(s) for s in vault.stores()}
        print(f"   vault[{site}]: {vault.opr_count} OPR(s), per disk {disks}")


def main() -> None:
    # One jurisdiction with 3 hosts and 3 disks, exactly like Fig. 11,
    # plus a second jurisdiction for the inter-jurisdiction finale.
    system = LegionSystem.build(
        [
            SiteSpec("figure11", hosts=3, disks=3),
            SiteSpec("elsewhere", hosts=2, disks=1),
        ],
        seed=11,
    )
    kv_cls = system.create_class("KV", factory=KVStoreImpl)
    magistrate = system.magistrates["figure11"].loid
    far_magistrate = system.magistrates["elsewhere"].loid

    a = system.call(kv_cls.loid, "Create", {"magistrate": magistrate})
    b = system.call(kv_cls.loid, "Create", {"magistrate": magistrate})
    objects = {"A": a, "B": b}
    system.call(a.loid, "Put", "who", "object A")
    system.call(b.loid, "Put", "who", "object B")
    show_state(system, "initial: A and B Active in the jurisdiction", objects)

    # "Object A has been deactivated into an OPR on Disk I."
    system.call(magistrate, "Deactivate", a.loid)
    show_state(system, "A deactivated into the vault (SaveState → OPR)", objects)

    # "B has been migrated from Host 2 to Host 3 through Disk I":
    # deactivate B, then activate it with a different host suggestion.
    b_host_before = where_is(system, b.loid)
    system.call(magistrate, "Deactivate", b.loid)
    hosts = system.jurisdictions["figure11"].host_objects
    current = None
    target_host = None
    for host_loid in hosts:
        server = [s for s in system.host_servers.values() if s.loid == host_loid][0]
        if server.impl.host_id != b_host_before[0]:
            target_host = host_loid
            break
    system.call(magistrate, "Activate", b.loid, target_host)
    show_state(
        system,
        f"B migrated through the vault (was host {b_host_before[0]})",
        objects,
    )
    print(f"   B's state survived: Get('who') -> {system.call(b.loid, 'Get', 'who')!r}")

    # Referencing Inert A reactivates it (activate-on-reference, 4.1.2).
    print(f"\n   referencing Inert A: Get('who') -> {system.call(a.loid, 'Get', 'who')!r}")
    show_state(system, "A reactivated by reference", objects)

    # Beyond Fig. 11: migrate A to a different jurisdiction entirely.
    print("\n== inter-jurisdiction Move() (Copy + Delete, section 3.8) ==")
    system.call(magistrate, "Move", a.loid, far_magistrate)
    print(f"   moved A to 'elsewhere'; state of far magistrate: "
          f"{system.call(far_magistrate, 'GetObjectState', a.loid)}")
    print(f"   A answers from its new home: Get('who') -> "
          f"{system.call(a.loid, 'Get', 'who')!r}")
    show_state(system, "after the Move", objects)
    row = system.call(kv_cls.loid, "GetRow", a.loid)
    print(f"   class logical table now lists magistrates: "
          f"{[str(m) for m in row.current_magistrates]}")


if __name__ == "__main__":
    main()
