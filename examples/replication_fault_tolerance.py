#!/usr/bin/env python
"""Replication: one LOID, many processes (paper section 4.3, Fig. 1).

Demonstrates both styles the paper describes:

* **system-level replication** -- a single LOID bound to a multi-element
  Object Address whose semantic (FIRST / ANY / K-of-N / ALL) governs how
  callers use the replica list, "without changing the application-level
  semantics for communicating with the object";
* **application-level replication** -- multiple LOIDs behind an
  application-managed group object ("the management of the 'object group'
  ... is left to the application programmer").

We kill replica processes and watch each semantic's failure-masking
behaviour, then repair the group.

Run:  python examples/replication_fault_tolerance.py
"""

from repro import LegionSystem, LegionObjectImpl, SiteSpec, errors, legion_method
from repro.replication.repair import probe_replicas, repair_replica_group
from repro.workloads.apps import KVStoreImpl


def kill_one_replica(system, loid):
    """Simulate a host fault taking down one replica process."""
    for host_server in system.host_servers.values():
        entry = host_server.impl.processes.find(loid)
        if entry is not None and not entry.crashed:
            host_server.impl.crash_object(loid, "power failure")
            return host_server.impl.host_id
    raise RuntimeError("no live replica left to kill")


class KVGroupCoordinator(LegionObjectImpl):
    """Application-level replication: writes fan out, reads try members.

    The coordinator is itself an ordinary Legion object managing a group
    of independent KV stores (each with its own LOID).
    """

    def __init__(self, members=()):
        self.members = list(members)

    def persistent_attributes(self):
        return ["members"]

    @legion_method("Put(string, value)")
    def put(self, key, value, *, ctx=None):
        env = ctx.nested_env(self.loid) if ctx else self.own_env()
        for member in self.members:
            yield from self.runtime.invoke(member, "Put", key, value, env=env)

    @legion_method("value Get(string)")
    def get(self, key, *, ctx=None):
        env = ctx.nested_env(self.loid) if ctx else self.own_env()
        last_error = None
        for member in self.members:
            try:
                value = yield from self.runtime.invoke(member, "Get", key, env=env)
                return value
            except errors.LegionError as exc:
                last_error = exc
        raise last_error


def main() -> None:
    system = LegionSystem.build(
        [SiteSpec("east", hosts=3), SiteSpec("west", hosts=3)], seed=44
    )
    from repro.workloads.apps import CounterImpl

    counter_cls = system.create_class("Counter", factory=CounterImpl)

    print("== system-level replication: 4 processes, 1 LOID ==")
    group = system.call(counter_cls.loid, "CreateReplicated", 4, "first", 1)
    print(f"   LOID {group.loid} bound to {group.address}")
    print(f"   Increment(1) -> {system.call(group.loid, 'Increment', 1)}")

    dead_host = kill_one_replica(system, group.loid)
    print(f"\n   replica on host {dead_host} crashed (FIRST semantics mask it):")
    print(f"   Increment(1) -> {system.call(group.loid, 'Increment', 1)}")

    print("\n   probing and repairing the group:")
    status = system.kernel.run_until_complete(
        system.spawn(probe_replicas(system.console.runtime, group))
    )
    print(f"   probe: {len(status.alive)} alive, {len(status.dead)} dead "
          f"(availability {status.availability:.0%})")
    repaired = system.kernel.run_until_complete(
        system.spawn(
            repair_replica_group(system.console.runtime, group, counter_cls.loid)
        )
    )
    print(f"   repaired group address: {repaired.address}")

    print("\n== semantics under failures (3 replicas, 1 dead) ==")
    for semantic, k in [("first", 1), ("any-random", 1), ("k-of-n", 2), ("all", 1)]:
        binding = system.call(counter_cls.loid, "CreateReplicated", 3, semantic, k)
        kill_one_replica(system, binding.loid)
        try:
            system.call(binding.loid, "Ping")
            outcome = "masked the failure"
        except errors.LegionError as exc:
            outcome = f"failed ({type(exc).__name__}) — needs repair first"
        label = f"{semantic}" + (f" (k={k})" if semantic == "k-of-n" else "")
        print(f"   {label:<16} {outcome}")

    print("\n== application-level replication: a coordinated KV group ==")
    kv_cls = system.create_class("KV", factory=KVStoreImpl)
    members = [system.call(kv_cls.loid, "Create", {}) for _ in range(3)]
    coord_cls = system.create_class("KVGroup", factory=KVGroupCoordinator)
    coordinator = system.call(
        coord_cls.loid,
        "Create",
        {"init": {"members": [m.loid for m in members]}},
    )
    system.call(coordinator.loid, "Put", "answer", 42)
    print(f"   Put replicated to {len(members)} member stores")
    for i, member in enumerate(members):
        print(f"   member {i} Get('answer') -> {system.call(member.loid, 'Get', 'answer')}")
    # Lose a member: the coordinator's read path fails over.
    row = system.call(kv_cls.loid, "GetRow", members[0].loid)
    system.call(row.current_magistrates[0], "Delete", members[0].loid)
    print(f"   member 0 deleted; coordinator Get('answer') -> "
          f"{system.call(coordinator.loid, 'Get', 'answer')}")


if __name__ == "__main__":
    main()
