#!/usr/bin/env python
"""Quickstart: a two-site Legion, one user class, the full object lifecycle.

Builds a simulated wide-area Legion (two organisations, two hosts each),
derives a user class from LegionObject at run time, creates an instance
through the class/magistrate/host cooperation of paper section 4.2, calls
it through the binding mechanism of section 4.1, and walks it through the
Active/Inert lifecycle of section 3.1.

Run:  python examples/quickstart.py
"""

from repro import LegionSystem, LegionObjectImpl, SiteSpec, legion_method


class Counter(LegionObjectImpl):
    """A minimal stateful Legion object."""

    def __init__(self, start: int = 0) -> None:
        self.value = start

    def persistent_attributes(self):
        # These attributes go into the Object Persistent Representation,
        # so the counter survives deactivation and migration.
        return ["value"]

    @legion_method("int Increment(int)")
    def increment(self, amount: int) -> int:
        self.value += amount
        return self.value

    @legion_method("int Get()")
    def get(self) -> int:
        return self.value


def main() -> None:
    print("== bringing up a two-site Legion (section 4.2.1 bootstrap) ==")
    system = LegionSystem.build(
        [SiteSpec("uva", hosts=2), SiteSpec("doe", hosts=2)], seed=2026
    )
    print(f"   sites: {[s.name for s in system.sites]}")
    print(f"   core classes: {sorted(system.core.servers)}")

    print("\n== deriving a user class from LegionObject (Derive, Fig. 4) ==")
    counter_class = system.create_class("Counter", factory=Counter)
    print(f"   class object: {counter_class.loid} at {counter_class.address}")

    print("\n== creating an instance (Create, Fig. 3) ==")
    counter = system.create_instance(counter_class.loid, context_name="demo/counter")
    print(f"   instance: {counter.loid} running at {counter.address}")
    print(f"   context name 'demo/counter' -> {system.lookup('demo/counter')}")

    print("\n== invoking methods (non-blocking invocation, section 2) ==")
    print(f"   Increment(5)  -> {system.call('demo/counter', 'Increment', 5)}")
    print(f"   Increment(7)  -> {system.call('demo/counter', 'Increment', 7)}")
    print(f"   Get()         -> {system.call('demo/counter', 'Get')}")
    iface = system.call("demo/counter", "GetInterface")
    print(f"   GetInterface() exports {len(iface)} methods, e.g. {iface.find('Increment', 1)}")

    print("\n== the Active/Inert lifecycle (section 3.1, Fig. 11) ==")
    row = system.call(counter_class.loid, "GetRow", counter.loid)
    magistrate = row.current_magistrates[0]
    system.call(magistrate, "Deactivate", counter.loid)
    vaults = {n: j.vault.opr_count for n, j in system.jurisdictions.items()}
    print(f"   deactivated; OPRs per jurisdiction vault: {vaults}")
    print("   referencing the Inert object transparently reactivates it:")
    print(f"   Get() -> {system.call('demo/counter', 'Get')}  (state preserved)")

    print("\n== what the binding machinery did ==")
    console = system.console
    print(f"   console binding-cache hit rate: {console.runtime.cache.stats.hit_rate:.2f}")
    print(f"   stale bindings detected+repaired: {console.runtime.stats.stale_detected}")
    print(f"   network messages total: {system.network.stats.messages_sent}")
    print(f"   simulated time elapsed: {system.kernel.now:.1f} ms")


if __name__ == "__main__":
    main()
