#!/usr/bin/env python
"""Distributed files through the single persistent name space.

The paper's motivation for naming: "A single persistent name space unites
the objects in the Legion system.  This makes remote files and data more
easily accessible, thereby facilitating the construction of applications
that span multiple sites." (section 1)

This example builds a small file service *on* the core model -- no new
mechanism, just a user class:

* ``LegionFile`` objects hold content and metadata, export
  Read/Write/Append/Stat, and persist through deactivation;
* files live under context names (``/home/alice/...``), so any site opens
  them by name;
* a file is Move()d next to a heavy reader (migration as a locality
  optimisation), and the reader's latency drops accordingly.

Run:  python examples/distributed_files.py
"""

from repro import LegionSystem, LegionObjectImpl, SiteSpec, legion_method


class LegionFile(LegionObjectImpl):
    """A file as a Legion object: content + metadata, fully persistent."""

    def __init__(self, content: str = "", owner: str = "unknown") -> None:
        self.content = content
        self.owner = owner
        self.version = 0

    def persistent_attributes(self):
        return ["content", "owner", "version"]

    @legion_method("string Read()")
    def read(self) -> str:
        return self.content

    @legion_method("string ReadRange(int, int)")
    def read_range(self, start: int, end: int) -> str:
        return self.content[start:end]

    @legion_method("int Write(string)")
    def write(self, content: str) -> int:
        self.content = content
        self.version += 1
        return self.version

    @legion_method("int Append(string)")
    def append(self, more: str) -> int:
        self.content += more
        self.version += 1
        return self.version

    @legion_method("stat Stat()")
    def stat(self) -> dict:
        return {
            "size": len(self.content),
            "owner": self.owner,
            "version": self.version,
        }


def timed_call(system, *args, **kwargs):
    t0 = system.kernel.now
    value = system.call(*args, **kwargs)
    return value, system.kernel.now - t0


def main() -> None:
    system = LegionSystem.build(
        [SiteSpec("virginia", hosts=2), SiteSpec("caltech", hosts=2)], seed=7
    )
    file_class = system.create_class("LegionFile", factory=LegionFile)

    print("== a home directory in the single persistent name space ==")
    home = system.context.subcontext("home")
    alice = home.subcontext("alice")
    notes = system.call(
        file_class.loid,
        "Create",
        {
            "init": {"content": "wide-area notes\n", "owner": "alice"},
            "magistrate": system.magistrates["virginia"].loid,
        },
    )
    alice.bind("notes.txt", notes.loid)
    system.bind_name("home/alice/data.csv", system.call(
        file_class.loid,
        "Create",
        {"init": {"content": "x,y\n1,2\n", "owner": "alice"},
         "magistrate": system.magistrates["virginia"].loid},
    ).loid)
    print(f"   names: {system.context.list('home')}")

    print("\n== any site opens files by name ==")
    print(f"   Read('/home/alice/notes.txt') -> "
          f"{system.call('home/alice/notes.txt', 'Read')!r}")
    system.call("home/alice/notes.txt", "Append", "appended from the console\n")
    print(f"   Stat -> {system.call('home/alice/notes.txt', 'Stat')}")

    print("\n== files persist through deactivation ==")
    row = system.call(file_class.loid, "GetRow", notes.loid)
    system.call(row.current_magistrates[0], "Deactivate", notes.loid)
    print(f"   deactivated; Read() -> "
          f"{system.call('home/alice/notes.txt', 'Read')!r}  (reactivated)")

    print("\n== migrating a file next to its reader ==")
    remote_reader = system.new_client("caltech-user", site="caltech")
    _, cold = timed_call(
        system, notes.loid, "Read", client=remote_reader
    )
    _, before = timed_call(
        system, notes.loid, "Read", client=remote_reader
    )
    print(f"   caltech reads virginia-hosted file: {before:.1f} ms/call (warm)")
    system.call(
        row.current_magistrates[0],
        "Move",
        notes.loid,
        system.magistrates["caltech"].loid,
    )
    _, first = timed_call(system, notes.loid, "Read", client=remote_reader)
    _, after = timed_call(system, notes.loid, "Read", client=remote_reader)
    print(f"   after Move() to caltech:              {after:.1f} ms/call (warm)")
    print(f"   speedup from locality: {before / after:.0f}x")
    stat = system.call(notes.loid, "Stat", client=remote_reader)
    print(f"   content and version survived the move: {stat}")


if __name__ == "__main__":
    main()
