#!/usr/bin/env python
"""Site autonomy: the DOE magistrate scenario of paper Fig. 9.

"Suppose the Department of Energy (DOE) does not trust university graduate
students to write a Magistrate class that adequately protects its objects.
The DOE can write its own Magistrate, and insist via the class mechanism
that all objects that the DOE owns execute only on Magistrates that it
trusts."

This example builds three organisations -- a university, the DOE, and
NASA -- each with its own jurisdiction.  The DOE replaces its magistrate
with one that (a) admits only certified implementations and (b) runs work
only for principals on its trust list.  We then watch requests succeed and
fail at the right boundaries.

Run:  python examples/site_autonomy.py
"""

from repro import LegionSystem, SiteSpec, TrustSetPolicy, errors
from repro.jurisdiction.magistrate import MagistrateImpl
from repro.workloads.apps import CounterImpl, KVStoreImpl


class DOEMagistrate(MagistrateImpl):
    """Fig. 9's DOEMagistrate: certified implementations, trusted principals."""

    def __init__(self, jurisdiction, certified, **kwargs):
        super().__init__(jurisdiction, **kwargs)
        self.certified = set(certified)
        self.trust = TrustSetPolicy()
        self.mayi_policy = self.trust  # every member function gated

    def admit_opr(self, opr):
        return all(name in self.certified for name, _ in opr.factory_chain)


def swap_magistrate(system, site, new_impl):
    """Redeploy a site's magistrate implementation behind its LOID."""
    server = system.magistrates[site]
    new_impl.hosts = list(server.impl.hosts)
    new_impl.loid = server.loid
    new_impl.runtime = server.runtime
    new_impl.services = server.services
    server.impl = new_impl
    return server.loid


def expect(label, fn, error=None):
    try:
        fn()
        outcome = "ADMITTED" if error is None else f"!! expected {error.__name__}"
    except errors.LegionError as exc:
        ok = error is not None and isinstance(exc, error)
        outcome = f"REFUSED ({type(exc).__name__})" if ok else f"!! {exc}"
    print(f"   {label:<58} {outcome}")


def main() -> None:
    system = LegionSystem.build(
        [SiteSpec("university", hosts=2), SiteSpec("doe", hosts=2), SiteSpec("nasa", hosts=2)],
        seed=1995,
    )
    print("== three organisations, three jurisdictions ==")
    for name, j in system.jurisdictions.items():
        print(f"   {name}: hosts={sorted(j.host_ids)} magistrate={j.magistrate}")

    # The DOE redeploys its magistrate with its own trust policy.
    doe = swap_magistrate(
        system,
        "doe",
        DOEMagistrate(
            system.jurisdictions["doe"],
            certified={"app.certified-counter"},
        ),
    )
    university = system.magistrates["university"].loid

    # User classes live at the open university site.
    certified_cls = system.create_class(
        "CertifiedCounter",
        instance_factory="app.certified-counter",
        factory=CounterImpl,
        magistrate=university,
    )
    plain_cls = system.create_class(
        "PlainKV",
        instance_factory="app.plain-kv",
        factory=KVStoreImpl,
        magistrate=university,
    )

    print("\n== before the DOE trusts anyone ==")
    expect(
        "console creates certified object at DOE",
        lambda: system.call(certified_cls.loid, "Create", {"magistrate": doe}),
        errors.SecurityDenied,
    )

    print("\n== the DOE adds the console to its trust list ==")
    system.magistrates["doe"].impl.trust.trust(system.console.loid)
    expect(
        "console creates certified object at DOE",
        lambda: system.call(certified_cls.loid, "Create", {"magistrate": doe}),
    )
    expect(
        "console creates UNCERTIFIED object at DOE",
        lambda: system.call(plain_cls.loid, "Create", {"magistrate": doe}),
        errors.RequestRefused,
    )
    expect(
        "the same uncertified object at the university",
        lambda: system.call(plain_cls.loid, "Create", {"magistrate": university}),
    )

    print("\n== migration into the DOE is policed too ==")
    outsider = system.call(plain_cls.loid, "Create", {"magistrate": university})
    expect(
        "Move(uncertified object, DOE magistrate)",
        lambda: system.call(university, "Move", outsider.loid, doe),
        errors.RequestRefused,
    )

    print("\n== a stranger principal is refused even for certified work ==")
    stranger = system.new_client("grad-student", site="university")
    expect(
        "stranger creates certified object at DOE",
        lambda: system.call(
            certified_cls.loid, "Create", {"magistrate": doe}, client=stranger
        ),
        errors.SecurityDenied,
    )

    print("\n== host-level autonomy: a host drains itself ==")
    host = system.jurisdictions["university"].host_objects[0]
    system.call(host, "SetAccepting", False)
    expect(
        "create with a drained host suggested",
        lambda: system.call(
            plain_cls.loid, "Create", {"magistrate": university, "host": host}
        ),
        errors.RequestRefused,
    )
    print("\nAutonomy is local: the DOE's rules never affected the other sites.")


if __name__ == "__main__":
    main()
