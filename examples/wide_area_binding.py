#!/usr/bin/env python
"""Wide-area binding at scale: caches, agents, and the combining tree.

Recreates the Section 5 story end to end on an eight-site testbed:

1. a locality-mixed workload (90% same-site accesses, the paper's first
   scalability assumption) runs against objects spread over all sites;
2. per-component request loads are printed — the "distributed systems
   principle" in numbers;
3. the same class-lookup burst is replayed against flat agents vs. a
   4-ary combining tree, showing LegionClass's load collapse (5.2.2);
4. a hot class is cloned and the creation load redistributes (5.2.2).

Run:  python examples/wide_area_binding.py
"""

from repro import LegionSystem, SiteSpec
from repro.binding.hierarchy import build_agent_tree
from repro.experiments.e3_combining_tree import _spawn_agent_on
from repro.metrics.counters import ComponentKind
from repro.workloads.apps import CounterImpl
from repro.workloads.generators import LocalityMix, TrafficDriver

N_SITES = 8


def main() -> None:
    sites = [SiteSpec(f"site{i}", hosts=2) for i in range(N_SITES)]
    system = LegionSystem.build(sites, seed=55)
    cls = system.create_class("Counter", factory=CounterImpl)

    print(f"== {N_SITES} sites, {len(system.host_servers)} hosts, "
          f"{N_SITES} jurisdictions, {N_SITES} binding agents ==")

    # -- objects pinned per site; clients with 90% local traffic.
    targets_by_site = {}
    for spec in system.sites:
        magistrate = system.magistrates[spec.name].loid
        targets_by_site[spec.name] = [
            system.create_instance(cls.loid, magistrate=magistrate).loid
            for _ in range(4)
        ]
    clients, client_sites = [], {}
    for spec in system.sites:
        for i in range(2):
            client = system.new_client(f"{spec.name}-c{i}", site=spec.name)
            clients.append(client)
            client_sites[client.loid.identity] = spec.name
    mix = LocalityMix(
        targets_by_site, local_fraction=0.9,
        rng=system.services.rng.stream("example-mix"),
    )

    system.reset_measurements()
    driver = TrafficDriver(
        system.kernel,
        clients,
        choose_target=lambda c: mix.choose(client_sites[c.loid.identity]),
        method="Increment",
        args=(1,),
        calls_per_client=25,
        think_time=2.0,
    )
    stats = system.kernel.run_until_complete(driver.start())
    print(f"\n== locality workload: {stats.calls_issued} calls, "
          f"{stats.success_rate:.0%} success ==")
    metrics = system.services.metrics
    print("   per-kind max request load (the bottleneck metric):")
    for kind in (
        ComponentKind.LEGION_CLASS,
        ComponentKind.CLASS_OBJECT,
        ComponentKind.BINDING_AGENT,
        ComponentKind.MAGISTRATE,
    ):
        print(f"     {kind.value:<15} max={metrics.max_by_kind(kind):>4}  "
              f"total={metrics.totals_by_kind().get(kind, 0):>5}")
    net = system.network.stats
    print("   traffic locality:", {c.value: n for c, n in net.by_class.items()})

    # -- flat agents vs combining tree for class lookups.
    print("\n== class-lookup burst: flat agents vs 4-ary combining tree ==")
    from repro.metrics.counters import ComponentId, MetricsRegistry

    def legion_class_load_after_lookups(leaf_servers):
        system.reset_measurements()
        probe = system.new_client("probe")
        for leaf in leaf_servers:
            # cold leaf: ask it to resolve every site's first object class
            system.call(leaf.loid, "GetBinding", cls.loid, client=probe)
        return metrics.get(
            ComponentId(ComponentKind.LEGION_CLASS, "LegionClass"),
            MetricsRegistry.REQUESTS,
        )

    flat = [_spawn_agent_on(system, None, f"flat{i}") for i in range(8)]
    flat_load = legion_class_load_after_lookups(flat)

    spawned = {}

    def spawn(parent, level, index):
        server = _spawn_agent_on(system, parent, f"tree-{level}-{index}")
        spawned[server.binding().address.primary()] = server
        return server.binding()

    tree = build_agent_tree(spawn, leaf_count=8, fanout=4)
    leaves = [spawned[b.address.primary()] for b in tree.leaves]
    tree_load = legion_class_load_after_lookups(leaves)
    print(f"   LegionClass requests — flat: {flat_load}, tree: {tree_load} "
          f"(tree depth {tree.depth}, {tree.agent_count} agents)")

    # -- cloning the hot class.
    print("\n== cloning the hot class (5.2.2) ==")
    pool = [system.call(cls.loid, "Clone") for _ in range(3)]
    family = [cls] + pool
    family_names = {str(b.loid) for b in family}
    # Warm every path first so the measured burst is pure creation load.
    for target in family:
        system.call(target.loid, "Create", {"no_delegate": True})
    system.reset_measurements()
    for i in range(24):
        target = family[i % len(family)]
        system.call(target.loid, "Create", {"no_delegate": True})
    loads = metrics.loads(ComponentKind.CLASS_OBJECT)
    busy = {k: v for k, v in sorted(loads.items()) if k in family_names}
    print(f"   24 creations over 1 original + {len(pool)} clones;")
    print(f"   per-family-member load: {busy}")
    print(f"   hottest family member: {max(busy.values())} (vs 24 without clones)")


if __name__ == "__main__":
    main()
