"""Property-based tests over the autoscaler's policy invariants.

Hypothesis sweeps random (high_water, low_water, cooldown) triples; for
each config one seeded burst-then-trickle run must uphold the policy
contract regardless of where the watermarks land:

* no flapping: adjacent opposite-direction actions (a spawn then a
  retire, or vice versa) are at least one cooldown apart;
* the live clone count stays within [0, max_clones] at every step of the
  action log;
* zero lost requests -- retirement drains in-flight work, so trickle
  traffic routed at a retiring clone still completes.

``derandomize=True`` keeps the sweep itself deterministic run to run.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.autoscale import AutoscaleConfig, CloneController, ClonePoolRouter
from repro.errors import LegionError
from repro.system.legion import LegionSystem, SiteSpec
from repro.workloads.apps import CounterImpl
from repro.workloads.generators import OpenLoopDriver

MAX_CLONES = 4


def _drive(config: AutoscaleConfig):
    """One burst-then-trickle run; returns (controller actions, stats)."""
    system = LegionSystem.build(
        [SiteSpec("east", hosts=3, max_processes=256)], seed=7
    )
    hot = system.create_class("HotClass", factory=CounterImpl)
    controller = CloneController(system, hot, config)
    controller.start()
    clients = [system.new_client(f"prop-{i}") for i in range(2)]
    routers = [ClonePoolRouter(client, hot, refresh=15.0) for client in clients]
    by_client = {id(c): r for c, r in zip(clients, routers, strict=True)}
    for router in routers:
        router.start()

    def choose_call(client):
        return (by_client[id(client)].choose(), "CloneEpoch", ())

    # Burst: 2 req/ms aggregate, above any drawn high_water, so most
    # configs grow the pool...
    burst = OpenLoopDriver(system.kernel, clients, choose_call, 1.0, 500.0)
    fut = burst.start()
    system.kernel.run_until_complete(fut, max_events=10_000_000)
    # ...then a live trickle (0.05 req/ms aggregate) below any drawn
    # low_water: the controller retires clones *while* traffic still
    # routes at them through possibly-stale router pools.
    trickle = OpenLoopDriver(system.kernel, clients, choose_call, 40.0, 900.0)
    fut = trickle.start()
    system.kernel.run_until_complete(fut, max_events=10_000_000)
    controller.stop()
    for router in routers:
        router.stop()
    system.kernel.run()
    return controller.actions, burst.stats, trickle.stats


@settings(
    max_examples=6,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    low=st.floats(min_value=0.05, max_value=0.5),
    gap=st.floats(min_value=0.05, max_value=1.0),
    cooldown=st.floats(min_value=5.0, max_value=80.0),
)
def test_policy_invariants_hold_for_random_watermarks(low, gap, cooldown):
    config = AutoscaleConfig(
        high_water=low + gap,
        low_water=low,
        cooldown=cooldown,
        tick=8.0,
        max_clones=MAX_CLONES,
    )
    actions, burst_stats, trickle_stats = _drive(config)

    # No flapping: opposite-direction neighbours >= one cooldown apart.
    for (t_prev, kind_prev, _), (t_next, kind_next, _) in zip(
        actions, actions[1:], strict=False
    ):
        if kind_prev != kind_next:
            assert t_next - t_prev >= cooldown, (
                f"flap: {kind_prev}@{t_prev} then {kind_next}@{t_next} "
                f"inside cooldown {cooldown}"
            )

    # Clone count stays within bounds at every step.
    live = 0
    for _, kind, _loid in actions:
        live += 1 if kind == "spawn" else -1
        assert 0 <= live <= MAX_CLONES, f"clone count {live} out of bounds"

    # Zero lost requests, including during retirement drains.
    assert burst_stats.calls_failed == 0, burst_stats.errors[:3]
    assert trickle_stats.calls_failed == 0, trickle_stats.errors[:3]


@given(
    low=st.floats(min_value=0.0, max_value=5.0, allow_nan=False),
    high=st.floats(min_value=0.0, max_value=5.0, allow_nan=False),
)
@settings(max_examples=50, deadline=None, derandomize=True)
def test_config_requires_a_hysteresis_gap(low, high):
    if low >= high:
        with pytest.raises(LegionError):
            AutoscaleConfig(high_water=high, low_water=low)
    else:
        config = AutoscaleConfig(high_water=high, low_water=low)
        assert config.low_water < config.high_water


@pytest.mark.parametrize(
    "kwargs",
    [
        {"high_water": 1.0, "low_water": 0.1, "tick": 0.0},
        {"high_water": 1.0, "low_water": 0.1, "cooldown": -1.0},
        {"high_water": 1.0, "low_water": 0.1, "min_clones": 3, "max_clones": 2},
        {"high_water": 1.0, "low_water": 0.1, "min_clones": -1},
    ],
)
def test_config_rejects_degenerate_knobs(kwargs):
    with pytest.raises(LegionError):
        AutoscaleConfig(**kwargs)
