"""Property-based tests (hypothesis) on core data structures and invariants."""


import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import InterfaceError
from repro.idl.interface import Interface
from repro.idl.parser import parse_interface, parse_signature
from repro.idl.signature import MethodSignature, Parameter
from repro.naming.binding import Binding
from repro.naming.cache import BindingCache
from repro.naming.loid import LOID, PUBLIC_KEY_BITS, derive_public_key
from repro.net.address import (
    AddressSemantic,
    ObjectAddress,
    ObjectAddressElement,
)

# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------

u64 = st.integers(min_value=0, max_value=(1 << 64) - 1)
u32 = st.integers(min_value=0, max_value=(1 << 32) - 1)
u16 = st.integers(min_value=0, max_value=(1 << 16) - 1)
key = st.integers(min_value=0, max_value=(1 << PUBLIC_KEY_BITS) - 1)

loids = st.builds(LOID, class_id=u64, class_specific=u64, public_key=key)

elements = st.builds(
    ObjectAddressElement,
    addr_type=u32,
    host=u32,
    port=u16,
    node=u32,
)


@st.composite
def addresses(draw):
    els = draw(st.lists(elements, min_size=1, max_size=6, unique=True))
    semantic = draw(st.sampled_from(list(AddressSemantic)))
    k = draw(st.integers(1, len(els))) if semantic is AddressSemantic.K_OF_N else 1
    return ObjectAddress(elements=tuple(els), semantic=semantic, k=k)


identifiers = st.from_regex(r"[A-Za-z_][A-Za-z0-9_]{0,12}", fullmatch=True)

signatures = st.builds(
    MethodSignature,
    name=identifiers,
    parameters=st.lists(
        st.builds(Parameter, type_name=identifiers), max_size=4
    ).map(tuple),
    returns=st.one_of(st.none(), identifiers),
)


# ---------------------------------------------------------------------------
# LOIDs
# ---------------------------------------------------------------------------


class TestLOIDProperties:
    @given(loids)
    def test_pack_unpack_is_identity(self, loid):
        assert LOID.unpack(loid.pack()) == loid

    @given(loids)
    def test_packed_width_constant(self, loid):
        assert len(loid.pack()) == (128 + PUBLIC_KEY_BITS) // 8

    @given(loids)
    def test_class_identity_is_idempotent_surgery(self, loid):
        class_id, zero = loid.class_identity()
        assert class_id == loid.class_id
        assert zero == 0

    @given(u64, u64, st.integers(0, 2**31))
    def test_key_derivation_deterministic(self, class_id, class_specific, secret):
        a = derive_public_key(class_id, class_specific, secret)
        b = derive_public_key(class_id, class_specific, secret)
        assert a == b
        assert 0 <= a < (1 << PUBLIC_KEY_BITS)

    @given(u64, st.integers(1, (1 << 64) - 1), st.integers(0, 2**31))
    def test_genuine_keys_always_verify(self, class_id, seq, secret):
        assert LOID.for_instance(class_id, seq, secret).verify_key(secret)


# ---------------------------------------------------------------------------
# Addresses
# ---------------------------------------------------------------------------


class TestAddressProperties:
    @given(elements)
    def test_element_roundtrip(self, element):
        assert ObjectAddressElement.unpack(element.pack()) == element

    @given(addresses())
    def test_address_roundtrip(self, address):
        assert ObjectAddress.unpack(address.pack()) == address

    @given(addresses())
    def test_without_every_element_shrinks_or_empties(self, address):
        current = address
        for element in address.elements:
            nxt = current.without(element)
            if nxt is None:
                assert len(current) == 1
                break
            assert len(nxt) == len(current) - 1
            assert element not in nxt.elements
            if nxt.semantic is AddressSemantic.K_OF_N:
                assert 1 <= nxt.k <= len(nxt)
            current = nxt

    @given(addresses(), st.randoms(use_true_random=False))
    def test_targets_subset_of_elements(self, address, rng):
        targets = address.targets(rng)
        assert set(targets) <= set(address.elements)
        assert len(targets) >= 1


# ---------------------------------------------------------------------------
# Binding cache
# ---------------------------------------------------------------------------


class TestCacheProperties:
    @given(
        st.lists(
            st.tuples(st.integers(1, 30), st.integers(1, 5)),
            min_size=1,
            max_size=200,
        ),
        st.integers(1, 8),
    )
    def test_capacity_never_exceeded_and_hits_are_correct(self, ops, capacity):
        cache = BindingCache(capacity=capacity)
        shadow = {}
        for seq, host in ops:
            loid = LOID.for_instance(7, seq)
            binding = Binding(
                loid,
                ObjectAddress.single(ObjectAddressElement.sim(host, 1024)),
            )
            cache.insert(binding)
            shadow[loid.identity] = binding
            assert len(cache) <= capacity
        # Every surviving entry must match the most recent insert for it.
        for entry in cache.entries():
            assert shadow[entry.loid.identity] == entry

    @given(st.lists(st.integers(1, 10), min_size=1, max_size=50))
    def test_lookup_never_returns_expired(self, seqs):
        cache = BindingCache(capacity=None)
        for i, seq in enumerate(seqs):
            cache.insert(
                Binding(
                    LOID.for_instance(7, seq),
                    ObjectAddress.single(ObjectAddressElement.sim(1, 1024)),
                    expires_at=float(i),
                )
            )
        now = float(len(seqs) + 1)
        for seq in seqs:
            assert cache.lookup(LOID.for_instance(7, seq), now) is None

    @given(st.data())
    def test_invalidate_exact_never_removes_different_binding(self, data):
        cache = BindingCache()
        loid = LOID.for_instance(7, 1)
        current = Binding(
            loid, ObjectAddress.single(ObjectAddressElement.sim(1, 1024))
        )
        other_host = data.draw(st.integers(2, 100))
        stale = Binding(
            loid,
            ObjectAddress.single(ObjectAddressElement.sim(other_host, 1024)),
        )
        cache.insert(current)
        cache.invalidate_exact(stale)
        assert cache.lookup(loid, 0.0) == current


# ---------------------------------------------------------------------------
# Interfaces
# ---------------------------------------------------------------------------


class TestInterfaceProperties:
    @given(st.lists(signatures, max_size=10))
    def test_merge_is_idempotent(self, sigs):
        try:
            iface = Interface(sigs)
        except InterfaceError:
            return  # conflicting random signatures: not a merge property
        merged = iface.merged_with(iface)
        assert merged == iface

    @given(st.lists(signatures, max_size=8), st.lists(signatures, max_size=8))
    def test_merge_result_conforms_to_both_inputs(self, sigs_a, sigs_b):
        try:
            a = Interface(sigs_a)
            b = Interface(sigs_b)
            merged = a.merged_with(b)
        except InterfaceError:
            return
        assert merged.conforms_to(a)
        assert merged.conforms_to(b)

    @given(signatures)
    def test_signature_text_roundtrips(self, sig):
        assert parse_signature(str(sig)) == sig

    @given(st.lists(signatures, max_size=8))
    def test_interface_describe_roundtrips(self, sigs):
        try:
            iface = Interface(sigs, name="Gen")
        except InterfaceError:
            return
        assert parse_interface(iface.describe()) == iface

    @given(st.lists(signatures, max_size=8))
    def test_conformance_is_reflexive(self, sigs):
        try:
            iface = Interface(sigs)
        except InterfaceError:
            return
        assert iface.conforms_to(iface)
        assert iface.equivalent_to(iface)


# ---------------------------------------------------------------------------
# Simulation kernel ordering
# ---------------------------------------------------------------------------


class TestKernelProperties:
    @given(st.lists(st.floats(0.0, 100.0), min_size=1, max_size=50))
    @settings(suppress_health_check=[HealthCheck.too_slow], deadline=None)
    def test_event_execution_times_are_monotone(self, delays):
        from repro.simkernel.kernel import SimKernel

        kernel = SimKernel()
        fired = []
        for delay in delays:
            kernel.schedule(delay, lambda d=delay: fired.append(kernel.now))
        kernel.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)

    @given(st.lists(st.floats(0.1, 50.0), min_size=1, max_size=20))
    @settings(suppress_health_check=[HealthCheck.too_slow], deadline=None)
    def test_process_timeouts_accumulate_exactly(self, waits):
        from repro.simkernel.kernel import SimKernel, Timeout

        kernel = SimKernel()

        def proc():
            for wait in waits:
                yield Timeout(wait)
            return kernel.now

        fut = kernel.spawn(proc())
        kernel.run()
        assert fut.result() == pytest.approx(sum(waits))


# ---------------------------------------------------------------------------
# Context
# ---------------------------------------------------------------------------


class TestContextProperties:
    names = st.from_regex(r"[a-z]{1,6}(/[a-z]{1,6}){0,2}", fullmatch=True)

    @given(st.dictionaries(names, st.integers(1, 1000), min_size=1, max_size=30))
    def test_bound_names_always_resolve(self, mapping):
        from repro.naming.context import Context

        ctx = Context()
        for name, seq in mapping.items():
            ctx.bind(name, LOID.for_instance(7, seq), replace=True)
        for name, seq in mapping.items():
            assert ctx.lookup(name) == LOID.for_instance(7, seq)

    @given(st.dictionaries(names, st.integers(1, 1000), min_size=1, max_size=20))
    def test_unbind_removes_exactly_the_name(self, mapping):
        from repro.naming.context import Context

        ctx = Context()
        for name, seq in mapping.items():
            ctx.bind(name, LOID.for_instance(7, seq), replace=True)
        victim = sorted(mapping)[0]
        ctx.unbind(victim)
        assert ctx.try_lookup(victim) is None
        for name in mapping:
            if name != victim:
                assert ctx.try_lookup(name) is not None
