"""Property-based tests (hypothesis) on the geo-replication data plane.

Each property pins one consistency-policy guarantee from
:mod:`repro.replication.policy` across randomized inputs:

* **quorum read-your-writes** -- any R/W pair with R + W > N, any
  write/read interleaving: a read after a write sees it (the read
  quorum intersects the last write quorum);
* **primary-copy invalidation ordering** -- when a write returns, every
  secondary either carries the new version or an invalidation marker at
  least that new, so no secondary can serve the old value as fresh;
* **read-any liveness** -- a partitioned replica never blocks a read:
  the locality-ordered FIRST address falls across the cut in bounded
  simulated time and still returns the seeded value;
* **chaos composition** -- a replica crash at an arbitrary time while
  the background repair service sweeps never loses state, and every
  runtime still settles the flow-era request identity.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.replication import (
    ReplicaRepairService,
    ReplicaSession,
    enable_replication,
)
from repro.replication.store import ReplicatedStoreImpl
from repro.simkernel.kernel import Timeout
from repro.system.legion import LegionSystem, SiteSpec

N_SITES = 3
SITES = [f"site{i}" for i in range(N_SITES)]
KEYS = ["alpha", "beta", "gamma"]
VALUES = [f"value-{i}" for i in range(4)]

#: Quorum pairs that overlap over a 3-replica group (R + W > N).
OVERLAPPING_QUORUMS = [
    (r, w) for r in range(1, N_SITES + 1) for w in range(1, N_SITES + 1)
    if r + w > N_SITES
]

PROPERTY_SETTINGS = settings(
    max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


def build(seed, consistency):
    """A 3-site system, replication on, one 3-replica group per site."""
    system = LegionSystem.build(
        [SiteSpec(name, hosts=2) for name in SITES], seed=seed
    )
    enable_replication(system)
    cls = system.create_class(
        "PropStore", factory=ReplicatedStoreImpl, consistency=consistency
    )
    binding = system.call(cls.loid, "CreateReplicated", N_SITES, "first", 1)
    system.kernel.run()  # drain the placement gossip
    return system, cls, binding


def drive(system, gen, name="prop"):
    """Run one session generator to completion on the console runtime."""
    return system.kernel.run_until_complete(system.spawn(gen, name=name))


def replica_impls(system, loid):
    """element -> ReplicatedStoreImpl for every live replica of ``loid``."""
    out = {}
    for host_server in system.host_servers.values():
        entry = host_server.impl.processes.find(loid)
        if entry is not None and not entry.crashed:
            out[entry.server.element] = entry.server.impl
    return out


def all_runtimes(system, extra_clients=()):
    servers = (
        [system.console]
        + list(system.host_servers.values())
        + list(system.magistrates.values())
        + list(system.agents.values())
        + list(extra_clients)
    )
    for host_server in system.host_servers.values():
        for entry in host_server.impl.processes.running():
            servers.append(entry.server)
    return [s.runtime for s in servers]


def settles(runtime):
    """The RuntimeStats settlement identity, shed included."""
    s = runtime.stats
    settled = (
        s.replies_received
        + s.timeouts
        + s.delivery_failures
        + s.cancelled
        + s.shed
    )
    return s.requests_sent == settled and not runtime._pending


class TestQuorumReadYourWrites:
    @PROPERTY_SETTINGS
    @given(
        seed=st.integers(0, 2**16),
        quorums=st.sampled_from(OVERLAPPING_QUORUMS),
        ops=st.lists(
            st.tuples(
                st.integers(0, len(KEYS) - 1), st.integers(0, len(VALUES) - 1)
            ),
            min_size=1,
            max_size=8,
        ),
    )
    def test_read_after_write_sees_it(self, seed, quorums, ops):
        read_q, write_q = quorums
        system, _cls, binding = build(seed, consistency="quorum")
        session = ReplicaSession(
            system.console.runtime,
            binding,
            "quorum",
            read_quorum=read_q,
            write_quorum=write_q,
        )
        model = {}
        for key_idx, value_idx in ops:
            key, value = KEYS[key_idx], VALUES[value_idx]
            drive(system, session.write(key, value), name="write")
            model[key] = value
            # Read-your-writes: the R-quorum intersects the W-quorum
            # just written, so max-version merge must surface it.
            assert drive(system, session.read(key), name="read") == value
        for key, value in model.items():  # and it stays visible later
            assert drive(system, session.read(key), name="audit") == value


class TestPrimaryCopyInvalidation:
    @PROPERTY_SETTINGS
    @given(
        seed=st.integers(0, 2**16),
        ops=st.lists(
            st.tuples(
                st.integers(0, len(KEYS) - 1), st.integers(0, len(VALUES) - 1)
            ),
            min_size=1,
            max_size=8,
        ),
    )
    def test_no_secondary_can_serve_the_old_value_as_fresh(self, seed, ops):
        system, _cls, binding = build(seed, consistency="primary-copy")
        session = ReplicaSession(system.console.runtime, binding, "primary-copy")
        primary = binding.address.elements[0]
        for key_idx, value_idx in ops:
            key, value = KEYS[key_idx], VALUES[value_idx]
            version = drive(system, session.write(key, value), name="write")
            # The write returned, so every secondary must already hold
            # either the new version or an invalidation at least that
            # new -- the acked-before-return ordering the policy pins.
            for element, impl in replica_impls(system, binding.loid).items():
                if element == primary:
                    continue
                copy_version = impl.data.get(key, (0, None))[0]
                invalid_at = impl.invalid_at.get(key, 0)
                assert max(copy_version, invalid_at) >= version, (
                    f"secondary {element} at version {copy_version} "
                    f"(invalid_at {invalid_at}) after write {version}"
                )
            assert drive(system, session.read(key), name="read") == value


class TestReadAnyLiveness:
    @PROPERTY_SETTINGS
    @given(
        seed=st.integers(0, 2**16),
        cuts=st.lists(
            st.sampled_from(
                [(a, b) for a in SITES for b in SITES if a < b]
            ),
            unique=True,
            max_size=2,
        ),
        reader_site=st.sampled_from(SITES),
    )
    def test_partitioned_replica_never_blocks_a_read(
        self, seed, cuts, reader_site
    ):
        system, _cls, binding = build(seed, consistency="read-any")
        session = ReplicaSession(system.console.runtime, binding, "read-any")
        drive(system, session.seed((k, f"v:{k}") for k in KEYS), name="seed")
        system.kernel.run()
        client = system.new_client("prop-reader", site=reader_site)
        reader = ReplicaSession(client.runtime, binding, "read-any")
        # Warm the reader's binding cache first: the property is about
        # the data plane (replica selection), not cold-start resolution.
        assert drive(system, reader.read(KEYS[0]), name="warm") == f"v:{KEYS[0]}"
        for a, b in cuts:
            system.network.partition(a, b)
        started = system.kernel.now
        try:
            for key in KEYS:
                # The reader's own jurisdiction holds a replica, so the
                # FIRST fallthrough reaches a live copy whatever the cuts.
                assert drive(system, reader.read(key), name="read") == f"v:{key}"
        finally:
            system.network.heal_all()
        # Bounded: element-by-element bounces, never a timeout stall.
        assert system.kernel.now - started < 1000.0


class TestChaosComposition:
    @PROPERTY_SETTINGS
    @given(
        seed=st.integers(0, 2**16),
        crash_at=st.floats(5.0, 150.0),
        victim_idx=st.integers(0, N_SITES - 1),
    )
    def test_crash_during_repair_sweeps_loses_no_state(
        self, seed, crash_at, victim_idx
    ):
        system, cls, binding = build(seed, consistency="read-any")
        kernel = system.kernel
        session = ReplicaSession(system.console.runtime, binding, "read-any")
        drive(system, session.seed((k, f"v:{k}") for k in KEYS), name="seed")
        kernel.run()
        service = ReplicaRepairService(system, interval=40.0, stagger=5.0)
        service.start()
        victim = binding.address.elements[victim_idx]

        def chaos():
            yield Timeout(crash_at)
            system.host_servers[victim.host].impl.crash_object(
                binding.loid, "chaos"
            )

        kernel.spawn(chaos(), name="chaos")
        kernel.run(until=kernel.now + 400.0)  # sweeps race the crash
        service.stop()
        kernel.run()
        # Deterministic final pass: whatever the race left, one sweep
        # per site must converge the group.
        for site in SITES:
            drive(system, service.sweep_site(site), name=f"sweep-{site}")
        kernel.run()

        final = system.call(cls.loid, "GetBinding", binding.loid)
        assert len(final.address.elements) == N_SITES
        impls = replica_impls(system, binding.loid)
        assert len(impls) == N_SITES
        for impl in impls.values():  # no member lost any seeded key
            assert sorted(impl.data) == sorted(KEYS)
        clients = list(service._clients.values())
        assert all(settles(rt) for rt in all_runtimes(system, clients))
