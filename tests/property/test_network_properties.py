"""Property-based tests on the network fabric's delivery guarantees."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.latency import LatencyModel
from repro.net.message import Message, MessageKind
from repro.net.network import Network
from repro.simkernel.kernel import SimKernel


def build_net(jitter=0.0):
    kernel = SimKernel()
    latency = LatencyModel(jitter_fraction=jitter, rng=random.Random(1) if jitter else None)
    latency.assign_host(1, "a")
    latency.assign_host(2, "a")
    latency.assign_host(3, "b")
    net = Network(kernel, latency, rng=random.Random(0))
    return kernel, net


class TestDeliveryProperties:
    @given(st.lists(st.integers(0, 2), min_size=1, max_size=40))
    @settings(deadline=None)
    def test_fifo_per_link_without_jitter(self, payload_hosts):
        """With constant latencies, messages between one (src, dst) pair
        deliver in send order -- the property the dispatch layer's
        correlation logic silently leans on."""
        kernel, net = build_net()
        src = net.allocate_element(1)
        net.register(src, lambda m: None)
        dests = {}
        inboxes = {}
        for host in (1, 2, 3):
            element = net.allocate_element(host)
            inbox = []
            net.register(element, inbox.append)
            dests[host] = element
            inboxes[host] = inbox
        sent = {1: [], 2: [], 3: []}
        for i, selector in enumerate(payload_hosts):
            host = (1, 2, 3)[selector]
            net.send(Message.request(src, dests[host], i))
            sent[host].append(i)
        kernel.run()
        for host, inbox in inboxes.items():
            got = [m.payload for m in inbox]
            assert got == sent[host], f"host {host} reordered"

    @given(st.integers(1, 30))
    @settings(deadline=None)
    def test_every_message_delivered_or_failure_reported(self, count):
        """Conservation: with no drops, sent == delivered + failures, and
        failures only for unregistered destinations."""
        kernel, net = build_net()
        src = net.allocate_element(1)
        src_inbox = []
        net.register(src, src_inbox.append)
        live = net.allocate_element(2)
        live_inbox = []
        net.register(live, live_inbox.append)
        ghost = net.allocate_element(3)  # never registered
        rng = random.Random(count)
        expected_live = 0
        expected_ghost = 0
        for i in range(count):
            if rng.random() < 0.5:
                net.send(Message.request(src, live, i))
                expected_live += 1
            else:
                net.send(Message.request(src, ghost, i))
                expected_ghost += 1
        kernel.run()
        assert len(live_inbox) == expected_live
        failures = [
            m for m in src_inbox if m.kind is MessageKind.DELIVERY_FAILURE
        ]
        assert len(failures) == expected_ghost
        assert net.stats.messages_sent == count
        assert net.stats.delivery_failures == expected_ghost

    @given(st.integers(2, 20))
    @settings(deadline=None)
    def test_jitter_never_beats_base_latency(self, count):
        """Jittered deliveries are never earlier than the base latency."""
        kernel, net = build_net(jitter=0.5)
        src = net.allocate_element(1)
        net.register(src, lambda m: None)
        dst = net.allocate_element(3)
        arrivals = []
        net.register(dst, lambda m: arrivals.append(kernel.now - m.sent_at))
        base = net.latency.base[net.latency.classify(1, 3)]
        for i in range(count):
            net.send(Message.request(src, dst, i))
        kernel.run()
        assert len(arrivals) == count
        assert all(base <= a < base * 1.5 + 1e-9 for a in arrivals)
