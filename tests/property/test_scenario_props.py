"""Property-based tests over the scenario language.

Hypothesis draws random well-formed specs (arrival shape, session
probabilities, topology) and seeds; for each one:

* compilation is a pure function: the same (spec, seed) yields the
  identical event stream, and a longer horizon extends it by prefix;
* the compiled stream conserves sessions: every arrival is either
  completed (reached max_requests) or abandoned, never both, and the
  per-tick counts sum to the total;
* the rich and columnar backends agree on per-frame session arrivals
  frame for frame (the mega backend's admission/serving may differ --
  the *workload* may not).

``derandomize=True`` keeps the sweep itself deterministic run to run.
"""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scenarios import (
    compile_events,
    from_dict,
    per_tick_arrivals,
    stream_stats,
)

arrivals = st.one_of(
    st.fixed_dictionaries(
        {"kind": st.just("poisson"), "rate": st.floats(0.0, 1.5)}
    ),
    st.fixed_dictionaries(
        {
            "kind": st.just("diurnal"),
            "rate": st.floats(0.1, 1.0),
            "amplitude": st.floats(0.0, 1.0),
            "period": st.floats(40.0, 300.0),
        }
    ),
    st.fixed_dictionaries(
        {
            "kind": st.just("flash"),
            "rate": st.floats(0.05, 0.8),
            "surge_at": st.floats(0.0, 100.0),
            "surge_duration": st.floats(0.0, 80.0),
            "surge_mult": st.floats(1.0, 10.0),
        }
    ),
)


@st.composite
def specs(draw):
    p_continue = draw(
        st.floats(0.0, 1.0).map(lambda p: round(p, 3))
    )
    phase = {
        "name": "p0",
        "duration": draw(st.floats(40.0, 240.0)),
        "arrival": draw(arrivals),
        "session": {
            "think_time": draw(st.floats(0.0, 15.0)),
            "p_continue": p_continue,
            "p_abandon": round(1.0 - p_continue, 3),
            "max_requests": draw(st.integers(1, 5)),
        },
    }
    return from_dict(
        {
            "name": "prop",
            "sites": draw(st.integers(1, 3)),
            "n_classes": draw(st.integers(1, 4)),
            "targets_per_site": draw(st.integers(1, 2)),
            "mix": {
                "kinds": {"work": 0.5, "read": 0.5},
                "zipf_s": draw(st.floats(0.0, 2.0)),
                "locality": draw(st.floats(0.0, 1.0)),
            },
            "phases": [phase],
        }
    )


@settings(max_examples=40, derandomize=True, deadline=None)
@given(spec=specs(), seed=st.integers(0, 2**31 - 1))
def test_compilation_is_deterministic(spec, seed):
    assert compile_events(spec, seed) == compile_events(spec, seed)


@settings(max_examples=40, derandomize=True, deadline=None)
@given(spec=specs(), seed=st.integers(0, 2**31 - 1))
def test_longer_timeline_extends_the_stream_by_prefix(spec, seed):
    """Growing a phase keeps the shorter compilation as an exact prefix.

    The per-tick draws consume the seeded stream in tick order, so the
    first ``duration`` ms of a longer run are the identical event
    stream -- what makes --quick results a prefix of --full ones.
    """
    short = compile_events(spec, seed)
    phases = (
        dataclasses.replace(
            spec.phases[0], duration=spec.phases[0].duration + 100.0
        ),
    )
    longer = compile_events(dataclasses.replace(spec, phases=phases), seed)
    assert longer[: len(short)] == list(short)


@settings(max_examples=40, derandomize=True, deadline=None)
@given(spec=specs(), seed=st.integers(0, 2**31 - 1))
def test_compiled_stream_conserves_sessions(spec, seed):
    plan = compile_events(spec, seed)
    stats = stream_stats(plan)
    assert stats["sessions"] == stats["completed"] + stats["abandoned"]
    assert stats["sessions"] == sum(per_tick_arrivals(plan))
    max_requests = spec.phases[0].session.max_requests
    for tick in plan:
        for a in tick.arrivals:
            assert 1 <= len(a.requests) <= max_requests
            assert a.completed == (len(a.requests) == max_requests) or (
                not a.completed
            )
            # completed implies the trajectory reached the cap
            if a.completed:
                assert len(a.requests) == max_requests


@settings(max_examples=25, derandomize=True, deadline=None)
@given(spec=specs(), seed=st.integers(0, 2**31 - 1))
def test_rich_and_mega_backends_see_identical_arrivals(spec, seed):
    pytest.importorskip("numpy", reason="repro[mega] extra not installed")
    from repro.scenarios.mega import frame_arrivals

    assert frame_arrivals(spec, seed) == per_tick_arrivals(
        compile_events(spec, seed)
    )
