"""Property-based tests over the band machine's transition invariants.

Hypothesis sweeps random evidence schedules (per-tick signal levels) and
random dwell configurations; whatever the weather, the machine must
uphold the archon72 contract:

* **never skips a band**: every transition moves exactly one step;
* **dwell respected**: consecutive degrades are at least ``degrade_dwell``
  apart, recoveries at least ``recover_dwell`` after entering the band;
* **no oscillation**: alternating hot/calm evidence faster than the
  recovery dwell never produces a recover transition -- hysteresis
  ratchets the band at its worst level instead of flapping;
* **recovery monotone**: once evidence goes calm for good, the band walks
  monotonically back to Stable and stays there.

``derandomize=True`` keeps the sweep deterministic run to run.
"""

from __future__ import annotations

from types import SimpleNamespace

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.health.bands import Band, BandMachine, BandRules

RULES = BandRules()  # shed_rate base 0.3, ladder (1, 3, 9, 27)


def ev(shed_rate: float):
    """Single-signal evidence: shed_rate carries the whole schedule."""
    return SimpleNamespace(
        shed_rate=shed_rate,
        retry_denied_rate=0.0,
        loss_backlog=0,
        under_replicated=0,
        queue_depth=0,
    )


#: Representative signal levels: calm, the hysteresis dead zone, and one
#: level per severity rung of the default shed ladder.
LEVELS = st.sampled_from([0.0, 0.2, 0.5, 1.0, 5.0, 10.0])
SCHEDULES = st.lists(LEVELS, min_size=1, max_size=60)
DWELLS = st.tuples(
    st.floats(min_value=0.0, max_value=50.0),
    st.floats(min_value=10.0, max_value=200.0),
)
TICK = 10.0


def drive(schedule, degrade_dwell=20.0, recover_dwell=60.0):
    """Run one schedule; returns (machine, transitions with timestamps)."""
    machine = BandMachine(
        rules=RULES, degrade_dwell=degrade_dwell, recover_dwell=recover_dwell
    )
    transitions = []
    for tick, level in enumerate(schedule):
        now = tick * TICK
        transition = machine.step(ev(level), now)
        if transition is not None:
            transitions.append(transition)
    return machine, transitions


@settings(derandomize=True, max_examples=200)
@given(schedule=SCHEDULES, dwells=DWELLS)
def test_never_skips_a_band(schedule, dwells):
    degrade_dwell, recover_dwell = dwells
    machine, transitions = drive(schedule, degrade_dwell, recover_dwell)
    band = Band.STABLE
    for transition in transitions:
        assert transition.from_band is band
        assert abs(transition.to_band - transition.from_band) == 1
        band = transition.to_band
    assert machine.band is band


@settings(derandomize=True, max_examples=200)
@given(schedule=SCHEDULES, dwells=DWELLS)
def test_dwell_times_are_respected(schedule, dwells):
    degrade_dwell, recover_dwell = dwells
    _machine, transitions = drive(schedule, degrade_dwell, recover_dwell)
    entered = 0.0
    for transition in transitions:
        if transition.direction == "degrade":
            # The first fall from Stable is immediate by design; every
            # further fall waits out the dwell in the band it leaves.
            if transition.from_band is not Band.STABLE:
                assert transition.time - entered >= degrade_dwell
        else:
            assert transition.time - entered >= recover_dwell
        entered = transition.time


@settings(derandomize=True, max_examples=100)
@given(
    hot=st.sampled_from([0.5, 1.0, 5.0, 10.0]),
    period=st.integers(min_value=1, max_value=5),
    cycles=st.integers(min_value=2, max_value=12),
)
def test_alternating_evidence_never_recovers(hot, period, cycles):
    # Hot/calm alternation with calm stretches shorter than the recovery
    # dwell: the band may degrade, must never recover -- no oscillation.
    recover_dwell = 60.0  # calm stretches: period * TICK <= 50 < 60
    schedule = ([hot] * period + [0.0] * period) * cycles
    _machine, transitions = drive(schedule, recover_dwell=recover_dwell)
    assert all(t.direction == "degrade" for t in transitions)


@settings(derandomize=True, max_examples=100)
@given(prefix=SCHEDULES)
def test_recovery_is_monotone_once_calm(prefix):
    # Any stormy prefix, then calm forever: from the first recovery on,
    # the band only rises, reaches Stable, and stays there.
    calm_ticks = 200
    schedule = prefix + [0.0] * calm_ticks
    machine, transitions = drive(schedule)
    start = len(prefix) * TICK
    tail = [t for t in transitions if t.time >= start]
    recovering = False
    for transition in tail:
        if transition.direction == "recover":
            recovering = True
        elif recovering:
            raise AssertionError(
                f"degrade after recovery began: {transition}"
            )
    assert machine.band is Band.STABLE
