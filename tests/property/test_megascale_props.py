"""Property-based tests over the columnar mega-scale kernels.

Hypothesis sweeps random (seed, population, admission limit, hot set)
scenarios; for each one:

* the frame-at-once :class:`BulkEngine` kernels must land on *exactly*
  the state the numpy-free per-agent :class:`ReferenceMachine` reaches --
  ledgers, per-class tallies, per-id values, checksums;
* ``demote(promote(x))`` round-trips a row's columns exactly, for
  arbitrary column contents;
* the id allocator only ever moves forward, whatever the alloc sequence.

``derandomize=True`` keeps the sweep itself deterministic run to run.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

np = pytest.importorskip("numpy", reason="repro[mega] extra not installed")

from repro.megascale import (  # noqa: E402
    BULK,
    BulkEngine,
    IdAllocator,
    ReferenceMachine,
    StateFrame,
)

scenarios = st.fixed_dictionaries(
    {
        "seed": st.integers(0, 2**31 - 1),
        "n": st.integers(5, 120),
        "n_classes": st.integers(1, 6),
        "n_hosts": st.integers(2, 5),
        "ticks": st.integers(1, 8),
        "per_tick": st.integers(0, 300),
        "limit": st.one_of(st.none(), st.integers(1, 4)),
        "n_hot": st.integers(0, 4),
        "crash": st.booleans(),
    }
)


@settings(max_examples=40, deadline=None, derandomize=True)
@given(cfg=scenarios)
def test_frame_kernels_match_the_per_agent_reference(cfg):
    rng = np.random.default_rng(cfg["seed"])
    n = cfg["n"]
    hot = sorted(rng.choice(n, size=min(cfg["n_hot"], n), replace=False).tolist())
    klass = rng.integers(0, cfg["n_classes"], size=n).astype(np.int32)
    host = rng.integers(0, cfg["n_hosts"], size=n).astype(np.int32)

    frame = StateFrame(n_classes=cfg["n_classes"], n_hosts=cfg["n_hosts"])
    frame.extend(n, klass=klass, host=host)
    engine = BulkEngine(
        frame, hot_ids=hot, per_tick_limit=cfg["limit"], demote_after=2
    )
    ref = ReferenceMachine(
        cfg["n_classes"],
        cfg["n_hosts"],
        hot_ids=hot,
        per_tick_limit=cfg["limit"],
        demote_after=2,
    )
    ref.extend(n, klass=klass, host=host)

    crash_tick = cfg["ticks"] // 2 if cfg["crash"] else None
    for tick in range(cfg["ticks"]):
        targets = rng.integers(0, n, size=cfg["per_tick"])
        engine.tick(tick, targets)
        ref.tick(tick, targets)
        if crash_tick is not None and tick == crash_tick:
            assert engine.crash_host(0) == ref.crash_host(0)
            engine.restore_host(0)
            ref.restore_host(0)
        engine.demote_idle(tick)
        ref.demote_idle(tick)
    engine.demote_all()
    ref.demote_all()

    el, rl = engine.ledger, ref.ledger
    assert (el.issued, el.bulk_completed, el.escalated_completed, el.shed) == (
        rl.issued,
        rl.bulk_completed,
        rl.escalated_completed,
        rl.shed,
    )
    assert (el.promotions, el.demotions, el.fault_promotions) == (
        rl.promotions,
        rl.demotions,
        rl.fault_promotions,
    )
    assert engine.settled() and ref.settled()
    assert [int(x) for x in frame.class_calls] == ref.class_calls
    assert [int(x) for x in frame.class_sheds] == ref.class_sheds
    assert [int(v) for v in frame.value] == [o.value for o in ref.objects]
    assert frame.value_checksum() == ref.value_checksum()
    assert frame.band_histogram() == ref.band_histogram()


@settings(max_examples=40, deadline=None, derandomize=True)
@given(
    seed=st.integers(0, 2**31 - 1),
    n=st.integers(1, 60),
    pick=st.integers(0, 59),
)
def test_demote_promote_round_trips_exactly(seed, n, pick):
    rng = np.random.default_rng(seed)
    i = pick % n
    frame = StateFrame(n_classes=3, n_hosts=4)
    frame.extend(
        n,
        klass=rng.integers(0, 3, size=n).astype(np.int32),
        host=rng.integers(0, 4, size=n).astype(np.int32),
    )
    frame.value[:] = rng.integers(0, 10**12, size=n)
    frame.calls[:] = rng.integers(0, 10**6, size=n)
    frame.cache_epoch[:] = rng.integers(-1, 50, size=n).astype(np.int32)

    before = frame.snapshot_row(i)
    occupancy_before = [int(x) for x in frame.host_occupancy]
    checksum_before = frame.value_checksum()

    (snap,) = frame.promote([i])
    assert snap == before
    frame.demote(i, value=snap["value"])

    assert frame.snapshot_row(i) == before
    assert int(frame.state[i]) == BULK
    assert [int(x) for x in frame.host_occupancy] == occupancy_before
    assert frame.value_checksum() == checksum_before


@settings(max_examples=60, deadline=None, derandomize=True)
@given(counts=st.lists(st.integers(0, 1000), min_size=0, max_size=30))
def test_allocator_never_reuses_an_id(counts):
    alloc = IdAllocator()
    seen_stop = 0
    for count in counts:
        ids = alloc.alloc(count)
        assert ids.start == seen_stop  # contiguous, monotone
        assert ids.stop == ids.start + count
        seen_stop = ids.stop
        assert alloc.high_water == seen_stop
    assert alloc.high_water == sum(counts)
