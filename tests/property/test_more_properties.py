"""More property-based tests: OPRs, relation graphs, vaults, composites."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import ObjectModelError, StorageError
from repro.core.relations import RelationGraph
from repro.naming.loid import LOID
from repro.persistence.opr import OPRecord
from repro.persistence.storage import PersistentStore
from repro.persistence.vault import Vault

u32 = st.integers(min_value=0, max_value=(1 << 32) - 1)
safe_text = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=126), max_size=20
)


@st.composite
def oprs(draw):
    class_id = draw(st.integers(1, 1000))
    seq = draw(st.integers(1, 10**6))
    chain_len = draw(st.integers(1, 4))
    chain = [
        (draw(safe_text.filter(bool)), {"arg": draw(st.integers(0, 99))})
        for _ in range(chain_len)
    ]
    state = draw(st.one_of(st.none(), st.binary(max_size=64)))
    return OPRecord(
        loid=LOID.for_instance(class_id, seq),
        class_loid=LOID.for_class(class_id),
        factory_chain=chain,
        state=state,
        component_kind=draw(
            st.sampled_from(["application", "class-object", "binding-agent"])
        ),
        annotations={"k": draw(st.integers(0, 9))},
    )


class TestOPRProperties:
    @given(oprs())
    def test_bytes_roundtrip_preserves_everything(self, opr):
        back = OPRecord.from_bytes(opr.to_bytes())
        assert back.loid == opr.loid
        assert back.class_loid == opr.class_loid
        assert back.factory_chain == opr.factory_chain
        assert back.state == opr.state
        assert back.component_kind == opr.component_kind
        assert back.annotations == opr.annotations

    @given(oprs(), st.binary(max_size=32))
    def test_with_state_never_mutates_original(self, opr, state):
        original_state = opr.state
        stamped = opr.with_state(state)
        assert opr.state == original_state
        assert stamped.state == state
        assert stamped.factory_chain == opr.factory_chain


class TestVaultProperties:
    @given(
        st.lists(
            st.tuples(st.integers(1, 20), st.binary(max_size=32)),
            min_size=1,
            max_size=40,
        ),
        st.integers(1, 4),
    )
    @settings(suppress_health_check=[HealthCheck.too_slow], deadline=None)
    def test_vault_always_returns_latest_state(self, writes, n_disks):
        vault = Vault("p")
        for i in range(n_disks):
            vault.add_store(PersistentStore("p", f"d{i}"))
        latest = {}
        for seq, state in writes:
            opr = OPRecord(
                loid=LOID.for_instance(5, seq),
                class_loid=LOID.for_class(5),
                factory_chain=[("f", {})],
                state=state,
            )
            vault.store_opr(opr)
            latest[seq] = state
        assert vault.opr_count == len(latest)
        for seq, state in latest.items():
            assert vault.load_opr(LOID.for_instance(5, seq)).state == state

    @given(st.lists(st.integers(1, 10), min_size=1, max_size=20))
    def test_delete_then_load_always_fails(self, seqs):
        vault = Vault("p")
        vault.add_store(PersistentStore("p", "d0"))
        for seq in set(seqs):
            vault.store_opr(
                OPRecord(
                    loid=LOID.for_instance(5, seq),
                    class_loid=LOID.for_class(5),
                    factory_chain=[("f", {})],
                )
            )
        victim = LOID.for_instance(5, seqs[0])
        vault.delete_opr(victim)
        with pytest.raises(StorageError):
            vault.load_opr(victim)


class TestRelationGraphProperties:
    @given(st.lists(st.integers(1, 30), min_size=2, max_size=30, unique=True))
    def test_kind_of_chains_have_single_root(self, class_ids):
        """Random linear derivations always give one sink and full ancestry."""
        graph = RelationGraph()
        loids = [LOID.for_class(cid) for cid in class_ids]
        for child, parent in zip(loids[1:], loids[:-1], strict=True):
            graph.record_kind_of(child, parent)
        assert graph.sinks() == [loids[0]]
        chain = graph.ancestry(loids[-1])
        assert chain == list(reversed(loids))

    @given(
        st.lists(
            st.tuples(st.integers(0, 14), st.integers(0, 14)),
            max_size=40,
        )
    )
    def test_inherits_from_never_admits_cycles(self, edges):
        """Whatever edge sequence we throw at it, the inherits-from
        relation stays acyclic (additions forming cycles raise)."""
        graph = RelationGraph()
        loids = [LOID.for_class(i + 1) for i in range(15)]
        for a, b in edges:
            if a == b:
                continue
            try:
                graph.record_inherits_from(loids[a], loids[b])
            except ObjectModelError:
                pass  # rejected additions are exactly the cycle-formers
        # Acyclicity: transitive closure of any node never contains itself.
        for loid in loids:
            assert loid not in graph.all_bases(loid)

    @given(st.lists(st.integers(1, 50), min_size=1, max_size=50, unique=True))
    def test_instances_partition_across_classes(self, seqs):
        graph = RelationGraph()
        class_a = LOID.for_class(1)
        class_b = LOID.for_class(2)
        for i, seq in enumerate(seqs):
            instance = LOID.for_instance(3, seq)
            graph.record_is_a(instance, class_a if i % 2 == 0 else class_b)
        a_count = len(graph.instances_of(class_a))
        b_count = len(graph.instances_of(class_b))
        assert a_count + b_count == len(seqs)
        assert set(graph.instances_of(class_a)).isdisjoint(
            graph.instances_of(class_b)
        )
