"""The autoscaler reads admission sheds as demand, not just served rate.

A server behind admission control *serves* at most its capacity, so the
historical served-rate trigger goes blind exactly when scaling matters
most: the overflow lives in the SHED counter.  These tests drive the
controller with manufactured shed counters (deterministic, no real
overload choreography needed) and pin both halves of the policy:
sheds force a grow, and a nonzero shed rate vetoes a shrink.
"""

from __future__ import annotations

from repro.autoscale import AutoscaleConfig, CloneController
from repro.metrics.counters import ComponentId, ComponentKind, MetricsRegistry
from repro.system.legion import LegionSystem, SiteSpec
from repro.workloads.apps import CounterImpl


def _build(seed=9):
    system = LegionSystem.build([SiteSpec("east", hosts=3)], seed=seed)
    cls = system.create_class("Hot", factory=CounterImpl)
    return system, cls


def _shed_component(cls):
    return ComponentId(ComponentKind.CLASS_OBJECT, str(cls.loid))


def test_shed_rate_forces_scale_up_despite_idle_served_rate():
    system, cls = _build()
    component = _shed_component(cls)
    controller = CloneController(
        system,
        cls,
        AutoscaleConfig(
            high_water=1000.0,  # served-rate trigger effectively off
            low_water=999.0,
            shed_water=0.5,
            cooldown=0.0,
            tick=10.0,
            min_clones=1,  # the grown clone stays once sheds dry up
            max_clones=4,
        ),
    )
    # 200 admission sheds land before the first tick samples.
    system.kernel.schedule(
        5.0,
        lambda: system.services.metrics.incr(
            component, MetricsRegistry.SHED, 200
        ),
    )
    controller.start()
    system.kernel.run(until=120.0)
    controller.stop()
    kinds = [kind for _t, kind, _loid in controller.actions]
    assert "spawn" in kinds, controller.actions
    clones = system.call(cls.loid, "GetClones")
    assert len(clones) >= 1


def test_nonzero_shed_rate_vetoes_shrink_until_dry():
    system, cls = _build(seed=10)
    component = _shed_component(cls)
    clone = system.call(cls.loid, "Clone")
    assert clone is not None
    controller = CloneController(
        system,
        cls,
        AutoscaleConfig(
            high_water=10.0,
            low_water=5.0,  # idle pool is always below this
            cooldown=0.0,
            tick=10.0,
            max_clones=4,
        ),
    )
    # A trickle of sheds (below any grow threshold -- shed_water is inf by
    # default) keeps landing until t=50: the pool must not shrink while
    # customers are still being turned away.
    for t in range(1, 50, 5):
        system.kernel.schedule(
            float(t),
            lambda: system.services.metrics.incr(component, MetricsRegistry.SHED),
        )
    controller.start()
    system.kernel.run(until=200.0)
    controller.stop()
    retires = [t for t, kind, _loid in controller.actions if kind == "retire"]
    assert retires, "the idle pool must eventually shrink once sheds stop"
    assert all(t > 50.0 for t in retires), (
        f"shrink fired while sheds were still arriving: {controller.actions}"
    )
    assert len(retires) == 1  # only one clone existed
