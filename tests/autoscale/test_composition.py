"""Magistrate recovery x autoscaler composition.

The clone pool is just more managed objects, so every recovery mechanism
from PR 3 (RecoverObject, SweepHosts, the stale-binding path) can fire
*while* the CloneController is spawning, routing at, or retiring pool
members.  These tests pin the composed behaviour:

* a clone's host crashing mid-drain must not wedge RetireClone or lose
  the in-flight requests (patient clients recover and complete);
* RecoverObject racing a retirement may resurrect the clone process, but
  the clone stays OUT of the routing pool -- retirement wins the pool;
* SweepHosts reaping a routed-at clone either heals it in place (pool
  keeps it, binding refreshed, epoch bumped) or, when recovery fails,
  drops it from the pool so traffic stops landing on a dead address.
"""

from repro.core.runtime import RetryPolicy
from repro.faults.driver import ChaosDriver, eligible_hosts
from repro.faults.log import FaultLog
from repro.faults.plan import FaultPlan
from repro.system.legion import LegionSystem, SiteSpec

PATIENT = RetryPolicy(
    max_attempts=10,
    base_backoff=20.0,
    backoff_factor=2.0,
    max_backoff=200.0,
    retry_partitions=True,
    retry_resolution_failures=True,
)


def _build(seed=11):
    """A 2-site testbed: hot class pinned to site 0's protected host."""
    system = LegionSystem.build(
        [SiteSpec("east", hosts=3), SiteSpec("west", hosts=3)], seed=seed
    )
    from repro.workloads.apps import CounterImpl

    site0 = system.sites[0].name
    cls = system.create_class(
        "Hot",
        factory=CounterImpl,
        magistrate=system.magistrates[site0].loid,
        host=system.host_servers[system.site_hosts[site0][0]].loid,
    )
    return system, cls


def _clone_on_crashable_host(system, cls):
    """Clone the class onto a site-0 host the chaos driver may kill."""
    site0 = system.sites[0].name
    crashable = [
        h for h in system.site_hosts[site0] if h in set(eligible_hosts(system))
    ]
    assert crashable, "no crashable host in site 0"
    host_id = crashable[0]
    clone = system.call(
        cls.loid,
        "Clone",
        {
            "magistrate": system.magistrates[site0].loid,
            "host": system.host_servers[host_id].loid,
        },
    )
    assert _find_host(system, clone.loid) == host_id
    return clone, host_id


def _find_host(system, loid):
    for host_id, server in system.host_servers.items():
        entry = server.impl.processes.find(loid)
        if entry is not None and not entry.crashed:
            return host_id
    return None


def _object_server(system, host_id, loid):
    return system.host_servers[host_id].impl.processes.find(loid).server


def _crash(system, host_id):
    ChaosDriver(system, FaultPlan(), FaultLog()).crash_host(host_id)


def _sweep_all(system):
    for site in sorted(system.magistrates):
        fut = system.spawn(system.magistrates[site].impl.sweep_hosts())
        system.kernel.run_until_complete(fut)


class TestCrashMidDrain:
    def test_host_crash_mid_drain_neither_wedges_nor_loses_requests(self):
        system, cls = _build()
        clone, host_id = _clone_on_crashable_host(system, cls)
        patient = system.new_client("patient")
        patient.runtime.retry_policy = PATIENT
        creates = [
            system.spawn(
                patient.runtime.invoke(clone.loid, "Create", {"no_delegate": True})
            )
            for _ in range(4)
        ]
        # Wait (simulated) until at least one Create is dispatched at the
        # clone, so the retirement genuinely has in-flight work to drain.
        clone_server = _object_server(system, host_id, clone.loid)
        deadline = system.kernel.now + 500.0
        while clone_server.in_flight == 0 and system.kernel.now < deadline:
            system.kernel.run(until=system.kernel.now + 1.0)
        assert clone_server.in_flight > 0, "no Create ever reached the clone"

        driver_client = system.new_client("driver")
        retire_fut = system.spawn(
            driver_client.runtime.invoke(cls.loid, "RetireClone", clone.loid)
        )
        system.kernel.run(until=system.kernel.now + 4.0)
        _crash(system, host_id)  # mid-drain: the poll loop is now running
        retired = system.kernel.run_until_complete(retire_fut)
        assert isinstance(retired, bool)
        # The pool dropped the clone immediately, crash or not.
        assert system.call(cls.loid, "CloneCount") == 0
        # The in-flight Creates survive: patient clients ride the
        # stale-binding path into RecoverObject and complete.
        bindings = [system.kernel.run_until_complete(f) for f in creates]
        assert all(b is not None for b in bindings)
        # The parent still serves fresh traffic (no delegation left).
        assert system.create_instance(cls.loid) is not None


class TestRecoveryRacingRetirement:
    def test_recover_object_resurrects_but_does_not_rejoin_pool(self):
        system, cls = _build()
        clone, host_id = _clone_on_crashable_host(system, cls)
        patient = system.new_client("patient")
        patient.runtime.retry_policy = PATIENT
        system.call(clone.loid, "CloneEpoch", client=patient)  # warm the cache
        _crash(system, host_id)
        # Retirement and a patient caller race: the caller's stale binding
        # drives RecoverObject through the class while RetireClone drains.
        retire_fut = system.spawn(
            system.new_client("driver").runtime.invoke(
                cls.loid, "RetireClone", clone.loid
            )
        )
        call_fut = system.spawn(patient.runtime.invoke(clone.loid, "CloneEpoch"))
        system.kernel.run_until_complete(retire_fut)
        system.kernel.run_until_complete(call_fut)
        system.kernel.run()
        # The racing call succeeded (the clone process may well be alive
        # again), but retirement owns the pool: the clone stays out.
        assert system.call(cls.loid, "CloneCount") == 0
        # A straggler reference still resurrects it through GetBinding --
        # retirement reconciled it into an OPR, not oblivion...
        assert system.call(clone.loid, "CloneEpoch", client=patient) == 0
        # ...and even that resurrection does not re-enter the pool.
        assert system.call(cls.loid, "CloneCount") == 0


class TestSweepReapsRoutedClone:
    def test_successful_recovery_keeps_clone_in_pool_with_fresh_binding(self):
        system, cls = _build()
        clone, host_id = _clone_on_crashable_host(system, cls)
        epoch_before = system.call(cls.loid, "CloneEpoch")
        old_pool = system.call(cls.loid, "GetClones")
        _crash(system, host_id)
        _sweep_all(system)
        # The sweep recovered the clone (class objects first) on another
        # host; the pool still routes at it, through a refreshed binding.
        assert system.call(cls.loid, "CloneCount") == 1
        assert system.call(cls.loid, "CloneEpoch") > epoch_before
        new_pool = system.call(cls.loid, "GetClones")
        assert new_pool[0].loid == clone.loid
        assert new_pool[0].address != old_pool[0].address
        new_host = _find_host(system, clone.loid)
        assert new_host is not None and new_host != host_id
        # Delegated creation flows through the recovered clone.
        assert system.create_instance(cls.loid) is not None

    def test_failed_recovery_drops_clone_from_pool(self):
        system, cls = _build()
        clone, host_id = _clone_on_crashable_host(system, cls)
        # Refuse placements everywhere else, so the sweep's RecoverObject
        # finds no capacity and recovery fails.
        for other_id, server in system.host_servers.items():
            if other_id != host_id:
                system.call(server.loid, "SetAccepting", False)
        _crash(system, host_id)
        _sweep_all(system)
        # Recovery failed => the magistrate told the class, and the pool
        # stopped routing at the dead address.
        assert system.call(cls.loid, "CloneCount") == 0
        assert _find_host(system, clone.loid) is None
        # Capacity returns: the parent serves instantiation on its own,
        # and a straggler reference resurrects the clone from its OPR --
        # but the pool membership stays dropped.
        for other_id, server in system.host_servers.items():
            if other_id != host_id:
                system.call(server.loid, "SetAccepting", True)
        assert system.create_instance(cls.loid) is not None
        assert system.call(clone.loid, "CloneEpoch") == 0
        assert system.call(cls.loid, "CloneCount") == 0
