"""Unit tests for the autoscaler's sensing and routing pieces.

The LoadMonitor's whole contract is "observe without touching": counter
deltas over simulated-time windows (surviving a mid-flight counter
reset), queue depths straight out of the process tables, and a
trace-ledger cross-check that agrees with the counter view.  The
ClonePoolRouter's contract is epoch-gated refresh plus a round-robin
index that survives pool shrinkage.
"""

from repro.autoscale import ClonePoolRouter, LoadMonitor, LoadSample
from repro.metrics.counters import ComponentKind
from repro.system.legion import LegionSystem, SiteSpec
from repro.trace.ledger import LoadLedger
from repro.trace.recorder import Span
from repro.workloads.apps import CounterImpl


def _build(seed=3):
    system = LegionSystem.build([SiteSpec("east", hosts=2)], seed=seed)
    cls = system.create_class("Hot", factory=CounterImpl)
    return system, cls


class TestLoadMonitor:
    def test_sample_rates_are_deltas_over_the_window(self):
        system, cls = _build()
        monitor = LoadMonitor(system)
        monitor.sample()  # baseline
        before = system.kernel.now
        for _ in range(5):
            system.call(cls.loid, "CloneEpoch")
        window = system.kernel.now - before
        sample = monitor.sample()
        assert sample.time == system.kernel.now
        # 5 requests landed on the hot class inside the window.
        assert sample.rates[str(cls.loid)] * window == 5
        # A second immediate sample has a zero-length window: no rates.
        assert monitor.sample().rates == {}

    def test_sample_rebaselines_after_a_counter_reset(self):
        system, cls = _build()
        monitor = LoadMonitor(system)
        for _ in range(8):
            system.call(cls.loid, "CloneEpoch")
        monitor.sample()
        system.reset_measurements()
        before = system.kernel.now
        for _ in range(2):
            system.call(cls.loid, "CloneEpoch")
        window = system.kernel.now - before
        sample = monitor.sample()
        # The cumulative count went 8 -> 2; a naive delta would be -6.
        assert sample.rates[str(cls.loid)] * window == 2

    def test_queue_depths_cover_live_class_objects(self):
        system, cls = _build()
        monitor = LoadMonitor(system)
        queues = monitor.queue_depths()
        # The hot class is live and idle: present, with nothing in flight.
        assert queues[str(cls.loid)] == 0

    def test_ledger_rates_agree_with_the_span_view(self):
        system, _cls = _build()
        monitor = LoadMonitor(system)
        label = f"{ComponentKind.CLASS_OBJECT.value}:C<9.9>"
        spans = [
            Span(1, i + 1, 0, "Create", "handle", label, start=float(10 * i))
            for i in range(4)
        ]
        for span in spans:
            span.end = span.start + 5.0
        rates = monitor.rates_from_ledger(LoadLedger(spans))
        # 4 handles over a [0, 35] window, keyed without the kind prefix.
        assert rates == {"C<9.9>": 4 / 35.0}

    def test_pool_aggregation_ignores_foreign_components(self):
        sample = LoadSample(
            time=0.0,
            rates={"a": 1.0, "b": 2.0, "c": 4.0},
            queues={"a": 1, "c": 3},
        )
        assert sample.pool_rate(["a", "b", "missing"]) == 3.0
        assert sample.pool_queue(["a", "b", "missing"]) == 1


class TestClonePoolRouter:
    def test_refresh_is_epoch_gated(self):
        system, cls = _build()
        client = system.new_client("router-client")
        client.runtime.seed_binding(cls)
        router = ClonePoolRouter(client, cls)
        fut = system.spawn(router.refresh_once())
        assert system.kernel.run_until_complete(fut) is True
        assert [b.loid for b in router.pool] == [cls.loid]
        # Same epoch: the poll answers False without re-fetching the pool.
        fut = system.spawn(router.refresh_once())
        assert system.kernel.run_until_complete(fut) is False
        # The pool changed: the next poll fetches the grown pool.
        clone = system.call(cls.loid, "Clone")
        fut = system.spawn(router.refresh_once())
        assert system.kernel.run_until_complete(fut) is True
        assert [b.loid for b in router.pool] == [cls.loid, clone.loid]

    def test_choose_round_robins_and_survives_shrink(self):
        system, cls = _build()
        client = system.new_client("router-client")
        client.runtime.seed_binding(cls)
        clone = system.call(cls.loid, "Clone")
        router = ClonePoolRouter(client, cls)
        fut = system.spawn(router.refresh_once())
        system.kernel.run_until_complete(fut)
        first, second, third = router.choose(), router.choose(), router.choose()
        assert [first, second, third] == [cls.loid, clone.loid, cls.loid]
        # Shrink the pool; the next refresh re-bounds the rotating index.
        system.call(cls.loid, "RetireClone", clone.loid)
        fut = system.spawn(router.refresh_once())
        system.kernel.run_until_complete(fut)
        assert router._rr < len(router.pool)
        assert router.choose() == cls.loid
