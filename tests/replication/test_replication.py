"""Replication tests (paper 4.3, Fig. 1)."""

import pytest

from repro import errors
from repro.net.address import AddressSemantic
from repro.replication.repair import probe_replicas, repair_replica_group


def kill_one_replica(system, loid):
    for host_server in system.host_servers.values():
        entry = host_server.impl.processes.find(loid)
        if entry is not None and not entry.crashed:
            host_server.impl.crash_object(loid)
            return entry.server.element
    raise AssertionError("no live replica found")


class TestCreateReplicated:
    def test_single_loid_many_addresses(self, fresh_legion):
        system, cls = fresh_legion
        binding = system.call(cls.loid, "CreateReplicated", 3, "first", 1)
        assert len(binding.address) == 3
        assert binding.address.semantic is AddressSemantic.FIRST
        hosts = {e.host for e in binding.address.elements}
        assert len(hosts) == 3  # distinct processes on distinct hosts

    def test_invalid_count_rejected(self, fresh_legion):
        system, cls = fresh_legion
        with pytest.raises(errors.ObjectModelError):
            system.call(cls.loid, "CreateReplicated", 0, "first", 1)

    def test_table_row_holds_group_address(self, fresh_legion):
        system, cls = fresh_legion
        binding = system.call(cls.loid, "CreateReplicated", 2, "all", 1)
        row = system.call(cls.loid, "GetRow", binding.loid)
        assert row.object_address == binding.address

    def test_any_random_spreads_calls(self, fresh_legion):
        system, cls = fresh_legion
        binding = system.call(cls.loid, "CreateReplicated", 3, "any-random", 1)
        # 30 increments land *somewhere*; total across replicas is 30.
        for _ in range(30):
            system.call(binding.loid, "Increment", 1)
        totals = []
        for host_server in system.host_servers.values():
            entry = host_server.impl.processes.find(binding.loid)
            if entry is not None:
                totals.append(entry.server.impl.value)
        assert sum(totals) == 30
        assert len([t for t in totals if t > 0]) >= 2  # spread, not pinned

    def test_delete_kills_every_replica(self, fresh_legion):
        system, cls = fresh_legion
        binding = system.call(cls.loid, "CreateReplicated", 3, "first", 1)
        system.call(cls.loid, "Delete", binding.loid)
        for host_server in system.host_servers.values():
            assert host_server.impl.processes.find(binding.loid) is None


class TestFailureMasking:
    def test_first_masks_dead_head(self, fresh_legion):
        system, cls = fresh_legion
        binding = system.call(cls.loid, "CreateReplicated", 3, "first", 1)
        kill_one_replica(system, binding.loid)
        assert system.call(binding.loid, "Ping") == "pong"

    def test_k_of_n_boundary(self, fresh_legion):
        system, cls = fresh_legion
        binding = system.call(cls.loid, "CreateReplicated", 3, "k-of-n", 2)
        kill_one_replica(system, binding.loid)
        values = system.call(binding.loid, "Increment", 1)
        assert len(values) == 2
        kill_one_replica(system, binding.loid)
        with pytest.raises(errors.LegionError):
            system.call(binding.loid, "Increment", 1)


class TestLifecycleGuards:
    def test_replica_group_cannot_be_deactivated(self, fresh_legion):
        system, cls = fresh_legion
        binding = system.call(cls.loid, "CreateReplicated", 2, "first", 1)
        row = system.call(cls.loid, "GetRow", binding.loid)
        magistrate = row.current_magistrates[0]
        with pytest.raises(errors.LifecycleError):
            system.call(magistrate, "Deactivate", binding.loid)
        # The group still answers after the refused operation.
        assert system.call(binding.loid, "Ping") == "pong"

    def test_replica_group_cannot_be_moved(self, fresh_legion):
        system, cls = fresh_legion
        binding = system.call(cls.loid, "CreateReplicated", 2, "first", 1)
        row = system.call(cls.loid, "GetRow", binding.loid)
        source = row.current_magistrates[0]
        target = [
            m.loid for m in system.magistrates.values() if m.loid != source
        ][0]
        with pytest.raises(errors.LifecycleError):
            system.call(source, "Move", binding.loid, target)


class TestMaintenance:
    def test_probe_classifies(self, fresh_legion):
        system, cls = fresh_legion
        binding = system.call(cls.loid, "CreateReplicated", 3, "all", 1)
        dead_element = kill_one_replica(system, binding.loid)
        fut = system.spawn(probe_replicas(system.console.runtime, binding))
        status = system.kernel.run_until_complete(fut)
        assert status.total == 3
        assert status.availability == pytest.approx(2 / 3)
        assert dead_element in status.dead

    def test_repair_shrinks_group_and_restores_service(self, fresh_legion):
        system, cls = fresh_legion
        binding = system.call(cls.loid, "CreateReplicated", 3, "all", 1)
        kill_one_replica(system, binding.loid)
        fut = system.spawn(
            repair_replica_group(system.console.runtime, binding, cls.loid)
        )
        repaired = system.kernel.run_until_complete(fut)
        assert len(repaired.address) == 2
        assert isinstance(system.call(binding.loid, "Increment", 1), list)

    def test_report_last_dead_replica_is_binding_not_found(self, fresh_legion):
        system, cls = fresh_legion
        binding = system.call(cls.loid, "CreateReplicated", 1, "first", 1)
        element = binding.address.primary()
        with pytest.raises(errors.BindingNotFound):
            system.call(cls.loid, "ReportDeadReplica", binding.loid, element)

    def test_healthy_repair_is_identity(self, fresh_legion):
        system, cls = fresh_legion
        binding = system.call(cls.loid, "CreateReplicated", 3, "all", 1)
        fut = system.spawn(
            repair_replica_group(system.console.runtime, binding, cls.loid)
        )
        repaired = system.kernel.run_until_complete(fut)
        assert len(repaired.address) == 3
