"""The geo-replication data plane: directory, catalogs, selection, repair.

Covers the subsystem around ``CreateReplicated`` (PR 7): the
``enable_replication`` fabric and its one-time epoch bump, the gossip-fed
two-tier catalogs, locality-aware replica selection on the call path, the
grow-side AddReplica semantics (size cap, concurrent-grow coalescing,
seed-before-publish), the replica-group guard in stale-binding recovery,
and the background repair service's deterministic sweep cycle.
"""

import pytest

from repro import errors
from repro.naming.binding import Binding
from repro.net.latency import LinkClass
from repro.replication import (
    ReplicaRepairService,
    ReplicaSession,
    enable_replication,
)
from repro.replication.store import ReplicatedStoreImpl
from repro.system.legion import LegionSystem, SiteSpec

KEYS = [f"k{i}" for i in range(4)]


def build_geo(seed=0, consistency="read-any", replicas=3, sites=3, hosts=2):
    """A fresh ``sites``-site system with replication on and one seeded
    replicated GeoStore group; returns (system, directory, cls, binding)."""
    system = LegionSystem.build(
        [SiteSpec(f"site{i}", hosts=hosts) for i in range(sites)], seed=seed
    )
    directory = enable_replication(system)
    cls = system.create_class(
        "GeoStore", factory=ReplicatedStoreImpl, consistency=consistency
    )
    binding = system.call(cls.loid, "CreateReplicated", replicas, "first", 1)
    session = ReplicaSession(system.console.runtime, binding, "read-any")
    system.kernel.run_until_complete(
        system.spawn(session.seed((k, f"v:{k}") for k in KEYS), name="seed")
    )
    system.kernel.run()  # drain the placement gossip
    return system, directory, cls, binding


def replica_impls(system, loid):
    """element -> ReplicatedStoreImpl for every live replica of ``loid``."""
    out = {}
    for host_server in system.host_servers.values():
        entry = host_server.impl.processes.find(loid)
        if entry is not None and not entry.crashed:
            out[entry.server.element] = entry.server.impl
    return out


def crash_element(system, loid, element):
    system.host_servers[element.host].impl.crash_object(loid, "test crash")


class TestEnableReplication:
    def test_builds_one_catalog_per_site_plus_index(self):
        system, directory, _cls, _binding = build_geo()
        assert directory.sites() == ["site0", "site1", "site2"]
        assert directory.index is not None
        for site in directory.sites():
            assert isinstance(directory.catalogs[site], Binding)

    def test_idempotent_and_single_epoch_bump(self):
        system = LegionSystem.build(
            [SiteSpec(f"site{i}", hosts=2) for i in range(2)], seed=3
        )
        before = system.services.callpath_epoch
        directory = enable_replication(system)
        assert system.services.callpath_epoch == before + 1
        assert enable_replication(system) is directory
        assert system.services.callpath_epoch == before + 1

    def test_locality_compiles_into_the_invoke_key(self):
        system, _directory, _cls, binding = build_geo()
        system.call(binding.loid, "Get", KEYS[0])  # force a (re)compile
        runtime = system.console.runtime
        assert runtime._invoke_key.locality
        assert runtime._replica_selector is not None
        # Locality never invalidates the zero-middleware fast path.
        assert runtime._plain_path

    def test_without_replication_key_stays_plain(self):
        system = LegionSystem.build([SiteSpec("uva", hosts=2)], seed=5)
        cls = system.create_class("Store", factory=ReplicatedStoreImpl)
        obj = system.create_instance(cls.loid)
        system.call(obj.loid, "Size")
        runtime = system.console.runtime
        assert not runtime._invoke_key.locality
        assert runtime._replica_selector is None
        assert runtime._plain_path


class TestCatalogGossip:
    def test_catalogs_learn_placement_without_round_trips(self):
        system, directory, cls, binding = build_geo()
        for site in directory.sites():
            catalog = directory.catalogs[site]
            assert system.call(catalog.loid, "ReplicaCount", binding.loid) == 1
            tracked = system.call(catalog.loid, "Tracked")
            assert (binding.loid, 3, cls.loid) in tracked

    def test_index_aggregates_site_counts(self):
        system, directory, _cls, binding = build_geo()
        index = directory.index
        assert system.call(index.loid, "TotalReplicas", binding.loid) == 3
        sites = dict(system.call(index.loid, "SitesOf", binding.loid))
        assert sites == {"site0": 1, "site1": 1, "site2": 1}
        assert system.call(index.loid, "UnderReplicated") == []

    def test_shrink_news_surfaces_under_replication(self):
        system, directory, cls, binding = build_geo()
        element = binding.address.elements[0]
        crash_element(system, binding.loid, element)
        system.call(cls.loid, "ReportDeadReplica", binding.loid, element)
        system.kernel.run()  # drain the removal gossip
        index = directory.index
        assert system.call(index.loid, "TotalReplicas", binding.loid) == 2
        under = system.call(index.loid, "UnderReplicated")
        assert [(u[0], u[1], u[2]) for u in under] == [(binding.loid, 2, 3)]


class TestLocalitySelection:
    def test_each_site_reads_its_own_replica(self):
        system, _directory, _cls, binding = build_geo()
        site_of = system.network.latency.site_of
        clients = {
            spec.name: system.new_client(f"c-{spec.name}", site=spec.name)
            for spec in system.sites
        }
        for client in clients.values():  # warm bindings outside the count
            system.call(binding.loid, "Get", KEYS[0], client=client)
        system.reset_measurements()
        for _ in range(5):
            for client in clients.values():
                system.call(binding.loid, "Get", KEYS[1], client=client)
        assert system.network.stats.by_class[LinkClass.WIDE_AREA] == 0
        served = {
            site_of(element.host): impl.reads_served
            for element, impl in replica_impls(system, binding.loid).items()
        }
        assert all(count > 0 for count in served.values())

    def test_selection_masks_a_partitioned_remote_replica(self):
        system, _directory, _cls, binding = build_geo()
        client = system.new_client("c0", site="site0")
        system.call(binding.loid, "Get", KEYS[0], client=client)
        system.network.partition("site0", "site1")
        try:
            # site0's reader keeps its local copy; the cut never shows.
            assert (
                system.call(binding.loid, "Get", KEYS[2], client=client)
                == f"v:{KEYS[2]}"
            )
        finally:
            system.network.heal_all()


class TestAddReplica:
    def test_noop_at_target_size(self):
        system, _directory, cls, binding = build_geo()
        before = set(binding.address.elements)
        grown = system.call(cls.loid, "AddReplica", binding.loid)
        assert set(grown.address.elements) == before

    def test_regrow_is_seeded_before_publication(self):
        system, _directory, cls, binding = build_geo()
        site_of = system.network.latency.site_of
        victim = binding.address.elements[1]
        victim_site = site_of(victim.host)
        crash_element(system, binding.loid, victim)
        system.call(cls.loid, "ReportDeadReplica", binding.loid, victim)
        grown = system.call(
            cls.loid, "AddReplica", binding.loid,
            system.magistrates[victim_site].loid,
        )
        fresh = [e for e in grown.address.elements if e != victim]
        assert len(fresh) == 3
        new = [e for e in fresh if site_of(e.host) == victim_site]
        assert len(new) == 1  # the hint put it back where coverage was lost
        impls = replica_impls(system, binding.loid)
        assert sorted(impls[new[0]].data) == sorted(KEYS)  # full state copy

    def test_concurrent_grows_coalesce_to_one_member(self):
        system, _directory, cls, binding = build_geo()
        victim = binding.address.elements[0]
        crash_element(system, binding.loid, victim)
        system.call(cls.loid, "ReportDeadReplica", binding.loid, victim)
        runtime = system.console.runtime
        futures = [
            system.spawn(
                runtime.invoke(cls.loid, "AddReplica", binding.loid),
                name=f"grow-{i}",
            )
            for i in range(3)
        ]
        results = [system.kernel.run_until_complete(f) for f in futures]
        for result in results:
            assert len(result.address.elements) == 3
        final = system.call(cls.loid, "GetBinding", binding.loid)
        assert len(final.address.elements) == 3  # racing grows never inflate

    def test_unseedable_grow_raises_and_publishes_nothing(self):
        system, _directory, cls, binding = build_geo()
        for element in list(binding.address.elements):
            crash_element(system, binding.loid, element)
        shrunk = system.call(
            cls.loid, "ReportDeadReplica", binding.loid,
            binding.address.elements[0],
        )
        assert len(shrunk.address.elements) == 2
        # The remaining "sources" are dead too, so a grow cannot be
        # seeded: the class must refuse rather than publish an empty
        # member that would serve reads with no state.
        with pytest.raises(errors.LegionError):
            system.call(cls.loid, "AddReplica", binding.loid)
        row = system.call(cls.loid, "GetRow", binding.loid)
        assert len(row.object_address.elements) == 2  # nothing published


class TestReplicaGroupStaleGuard:
    def test_row_carries_the_target_size(self):
        system, _directory, cls, binding = build_geo(replicas=2)
        row = system.call(cls.loid, "GetRow", binding.loid)
        assert row.replica_want == 2
        assert row.replicated

    def test_stale_refresh_of_single_member_group_keeps_the_address(self):
        # The regression this guard pins: magistrates refuse to recover
        # replica groups (the class owns the address), so a stale-binding
        # refresh that nulled the row of a size-1 group lost the object
        # forever.  ``replica_want`` marks the row class-owned at ANY size.
        system, _directory, cls, binding = build_geo(replicas=1)
        # Passing a Binding (not a LOID) routes to the stale-refresh path.
        refreshed = system.call(cls.loid, "GetBinding", binding)
        assert refreshed.address.elements == binding.address.elements
        row = system.call(cls.loid, "GetRow", binding.loid)
        assert row.object_address is not None
        assert system.call(binding.loid, "Get", KEYS[0]) == f"v:{KEYS[0]}"


class TestRepairService:
    def test_sweep_cycle_restores_crashed_replica_with_state(self):
        system, directory, cls, binding = build_geo()
        kernel = system.kernel
        site_of = system.network.latency.site_of
        victim = binding.address.elements[2]
        victim_site = site_of(victim.host)
        crash_element(system, binding.loid, victim)
        service = ReplicaRepairService(system)
        for site in directory.sites():
            kernel.run_until_complete(
                system.spawn(service.sweep_site(site), name=f"sweep-{site}")
            )
        kernel.run()
        kinds = [kind for _s, _l, kind in service.actions]
        assert "shrink" in kinds and "regrow" in kinds
        final = system.call(cls.loid, "GetBinding", binding.loid)
        assert len(final.address.elements) == 3
        assert {site_of(e.host) for e in final.address.elements} == {
            "site0", "site1", "site2",
        }
        for impl in replica_impls(system, binding.loid).values():
            assert sorted(impl.data) == sorted(KEYS)

    def test_healthy_sweep_is_identity(self):
        system, directory, cls, binding = build_geo()
        service = ReplicaRepairService(system)
        for site in directory.sites():
            system.kernel.run_until_complete(
                system.spawn(service.sweep_site(site), name=f"sweep-{site}")
            )
        assert service.actions == []
        final = system.call(cls.loid, "GetBinding", binding.loid)
        assert set(final.address.elements) == set(binding.address.elements)

    def test_stop_kills_sweep_loops_even_mid_call(self):
        # ProcessKilled is a LegionError; the service's broad catches must
        # re-raise it or stop() leaves zombie loops that hang kernel.run().
        system, _directory, _cls, binding = build_geo()
        kernel = system.kernel
        service = ReplicaRepairService(system, interval=50.0, stagger=5.0)
        service.start()
        crash_element(system, binding.loid, binding.address.elements[0])
        kernel.run(until=kernel.now + 120.0)  # loops are mid-sweep in here
        service.stop()
        before = kernel.events_executed
        kernel.run(max_events=200_000)
        # The queue drained (zombie sweep loops would spin to the cap).
        assert kernel.events_executed - before < 200_000
