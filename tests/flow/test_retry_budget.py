"""Satellite: the global retry token bucket bounds retry volume.

A partition used to turn every patient caller into a retry storm: N
concurrent invokes times max_attempts, all hammering the dead link.
``RetryPolicy.retry_tokens`` installs one *per-runtime* bucket that all
of a runtime's invokes share -- total retries cannot exceed the budget
no matter how many calls are in flight.
"""

from __future__ import annotations

from repro.core.runtime import RetryPolicy
from repro.errors import BindingNotFound, PartitionedError
from repro.faults.driver import ChaosDriver
from repro.faults.log import FaultLog
from repro.faults.plan import FaultPlan
from repro.system.legion import LegionSystem, SiteSpec
from repro.workloads.apps import CounterImpl

TOKENS = 6.0


def test_partition_retry_volume_is_capped_by_the_token_bucket():
    system = LegionSystem.build(
        [SiteSpec("east", hosts=25), SiteSpec("west", hosts=25)], seed=5
    )
    cls = system.create_class("Counter", factory=CounterImpl)
    binding = system.create_instance(
        cls.loid, magistrate=system.magistrates["west"].loid
    )
    client = system.new_client("storm", site="east")
    client.runtime.retry_policy = RetryPolicy(
        max_attempts=25,
        base_backoff=4.0,
        backoff_factor=1.5,
        retry_partitions=True,
        retry_resolution_failures=True,
        retry_tokens=TOKENS,
    )
    driver = ChaosDriver(system, FaultPlan(), FaultLog())
    driver.partition("east", "west", duration=10_000.0)

    kernel = system.kernel
    futs = [
        kernel.spawn(client.runtime.invoke(binding.loid, "Get", timeout=50.0))
        for _ in range(8)
    ]
    kernel.run()

    stats = client.runtime.stats
    assert all(f.done() for f in futs)
    assert all(
        isinstance(f.exception(), (PartitionedError, BindingNotFound))
        for f in futs
    ), [f.exception() for f in futs]
    # Every attempt after an invoke's first spends one shared token: the
    # whole runtime's retry volume is bounded by the budget, not by
    # invokes x max_attempts (which would be 8 x 24 = 192 here).
    retries = stats.attempts - stats.invocations
    assert 0 < retries <= TOKENS
    assert stats.retry_denied > 0
    # The bucket never blocks first attempts.
    assert stats.invocations == 8
    assert stats.attempts >= 8


def test_refill_restores_tokens_over_time():
    system = LegionSystem.build(
        [SiteSpec("east", hosts=2), SiteSpec("west", hosts=2)], seed=7
    )
    cls = system.create_class("Counter", factory=CounterImpl)
    binding = system.create_instance(
        cls.loid, magistrate=system.magistrates["west"].loid
    )
    client = system.new_client("patient", site="east")
    client.runtime.retry_policy = RetryPolicy(
        max_attempts=40,
        base_backoff=8.0,
        backoff_factor=1.0,
        retry_partitions=True,
        retry_resolution_failures=True,
        retry_tokens=1.0,
        retry_token_refill=0.05,  # one token per 20 simulated ms
    )
    driver = ChaosDriver(system, FaultPlan(), FaultLog())
    driver.partition("east", "west", duration=100.0)

    kernel = system.kernel
    fut = kernel.spawn(client.runtime.invoke(binding.loid, "Get", timeout=500.0))
    kernel.run()

    # The refill trickles enough retries to outlast the heal: the call
    # eventually lands instead of dying when the initial bucket ran dry.
    assert fut.exception() is None, fut.exception()
    assert fut.result() == 0
    stats = client.runtime.stats
    retries = stats.attempts - stats.invocations
    # Far fewer retries than the 39 an unmetered policy would have fired.
    assert 0 < retries <= 10
