"""Admission control: bounded queues, deadline/priority shedding, pushback."""

from __future__ import annotations

import pytest

from repro.core.method import MethodResult
from repro.core.runtime import RetryPolicy
from repro.core.server import ObjectServer
from repro.errors import Overloaded
from repro.flow.config import FlowConfig
from repro.metrics.counters import ComponentKind, MetricsRegistry
from repro.naming.loid import LOID
from tests.core.conftest import EchoImpl, start_object

NO_RETRY = RetryPolicy(max_attempts=1)


def _flow_server(services, impl, host, seq, **flow_kwargs) -> ObjectServer:
    loid = LOID.for_instance(91, seq, services.secret)
    return ObjectServer(
        services, loid, impl, host=host, flow=FlowConfig(**flow_kwargs)
    )


def _pair(services, **flow_kwargs):
    """(caller, flow-governed callee) with seeded bindings."""
    caller = start_object(services, EchoImpl("caller"), host=1)
    callee = _flow_server(services, EchoImpl("callee"), 2, 901, **flow_kwargs)
    caller.runtime.seed_binding(callee.binding())
    callee.runtime.seed_binding(caller.binding())
    return caller, callee


def test_capacity_overflow_sheds_with_retry_after(services):
    caller, callee = _pair(
        services, capacity=1, queue_limit=0, service_estimate=5.0
    )
    caller.runtime.retry_policy = NO_RETRY
    kernel = services.kernel
    futs = [
        kernel.spawn(caller.runtime.invoke(callee.loid, "Slow", 10.0))
        for _ in range(3)
    ]
    kernel.run()
    settled = [f.exception() for f in futs]
    shed = [e for e in settled if isinstance(e, Overloaded)]
    ok = [f for f in futs if f.exception() is None]
    assert len(ok) == 1 and len(shed) == 2
    for exc in shed:
        assert exc.retry_after >= 5.0  # at least one service estimate
    assert caller.runtime.stats.shed == 2
    assert callee.admission.stats.admitted == 1
    assert callee.admission.stats.shed == {"capacity": 2}
    # Counter vocabulary: admitted work is REQUESTS, shed work is SHED.
    assert services.metrics.get(callee.component, MetricsRegistry.REQUESTS) == 1
    assert services.metrics.get(callee.component, MetricsRegistry.SHED) == 2


def test_queue_admits_up_to_limit_then_sheds(services):
    caller, callee = _pair(
        services, capacity=1, queue_limit=2, service_estimate=1.0
    )
    caller.runtime.retry_policy = NO_RETRY
    kernel = services.kernel
    futs = [
        kernel.spawn(caller.runtime.invoke(callee.loid, "Slow", 2.0))
        for _ in range(5)
    ]
    kernel.run()
    ok = [f for f in futs if f.exception() is None]
    shed = [f for f in futs if isinstance(f.exception(), Overloaded)]
    # 1 dispatched + 2 queued survive; the other 2 find the queue full.
    assert len(ok) == 3 and len(shed) == 2
    assert callee.admission.stats.queued == 2
    assert callee.admission.stats.shed == {"capacity": 2}


def test_hopeless_deadline_is_shed_on_arrival(services):
    # Caller-side flow config stamps deadlines on invocations.
    services.flow = FlowConfig(
        capacity=1, queue_limit=8, service_estimate=5.0
    )
    caller, callee = _pair(
        services, capacity=1, queue_limit=8, service_estimate=5.0
    )
    caller.runtime.retry_policy = NO_RETRY
    kernel = services.kernel
    # Occupy the only slot far past the second call's deadline.
    blocker = kernel.spawn(caller.runtime.invoke(callee.loid, "Slow", 30.0))
    doomed_holder = []
    kernel.schedule(
        0.5,
        lambda: doomed_holder.append(
            kernel.spawn(
                caller.runtime.invoke(callee.loid, "Echo", "hi", timeout=3.0)
            )
        ),
    )
    kernel.run()
    (doomed,) = doomed_holder
    assert blocker.exception() is None
    exc = doomed.exception()
    assert isinstance(exc, Overloaded)
    assert "deadline" in str(exc)
    assert callee.admission.stats.shed == {"deadline": 1}


def test_full_queue_evicts_worst_priority_waiter(services):
    services.flow = FlowConfig(
        capacity=1, queue_limit=1, service_estimate=1.0
    )
    caller, callee = _pair(
        services, capacity=1, queue_limit=1, service_estimate=1.0
    )
    caller.runtime.retry_policy = NO_RETRY
    kernel = services.kernel
    runtime = caller.runtime
    futs = {}

    def fire(name, method, arg=None, priority=0):
        args = () if arg is None else (arg,)
        futs[name] = kernel.spawn(
            runtime.invoke(callee.loid, method, *args, priority=priority)
        )

    fire("blocker", "Slow", 10.0)
    # Staggered so arrival order at the callee is deterministic.
    kernel.schedule(0.2, fire, "low", "Echo", "low")
    kernel.schedule(0.4, fire, "high", "Echo", "high", 5)
    kernel.run()
    assert futs["blocker"].exception() is None
    exc = futs["low"].exception()
    assert isinstance(exc, Overloaded), "low-priority waiter should be evicted"
    assert futs["high"].result() == "callee:high"
    assert callee.admission.stats.shed == {"evicted": 1}


def test_pushback_paced_retry_succeeds_without_rebinding(services):
    caller, callee = _pair(
        services, capacity=1, queue_limit=0, service_estimate=4.0
    )
    caller.runtime.retry_policy = RetryPolicy(max_attempts=6)
    kernel = services.kernel
    blocker = kernel.spawn(caller.runtime.invoke(callee.loid, "Slow", 6.0))
    echo_holder = []
    kernel.schedule(
        0.5,
        lambda: echo_holder.append(
            kernel.spawn(caller.runtime.invoke(callee.loid, "Echo", "again"))
        ),
    )
    kernel.run()
    (echo,) = echo_holder
    assert blocker.exception() is None
    assert echo.result() == "callee:again"
    stats = caller.runtime.stats
    # Shed replies are flow control, not stale bindings.
    assert stats.shed >= 1
    assert stats.stale_detected == 0
    assert stats.rebinds == 0
    assert stats.refreshes == 0
    # The retry waited out the server's pushback hint: the echo could not
    # land before the blocker's 6ms of service drained.
    assert echo.result() == "callee:again"


def test_admission_ignores_non_admitted_kinds(services):
    cfg = FlowConfig(
        capacity=1,
        queue_limit=0,
        admit_kinds=frozenset({ComponentKind.APPLICATION}),
    )
    loid = LOID.for_instance(91, 950, services.secret)
    infra = ObjectServer(
        services,
        loid,
        EchoImpl("infra"),
        host=3,
        component_kind=ComponentKind.BINDING_AGENT,
        flow=cfg,
    )
    assert infra.admission is None  # kind not admitted => no queue at all


@pytest.mark.parametrize(
    "kwargs",
    [
        {"capacity": 0},
        {"queue_limit": -1},
        {"service_estimate": 0.0},
        {"credit_window": 0},
        {"batch_window": -0.5},
        {"batch_limit": 1},
    ],
)
def test_flow_config_rejects_nonsense(kwargs):
    with pytest.raises(ValueError):
        FlowConfig(**kwargs)


def test_flow_config_admits():
    assert not FlowConfig().admits(ComponentKind.APPLICATION)
    assert FlowConfig(capacity=2).admits(ComponentKind.APPLICATION)
    restricted = FlowConfig(
        capacity=2, admit_kinds=frozenset({ComponentKind.APPLICATION})
    )
    assert restricted.admits(ComponentKind.APPLICATION)
    assert not restricted.admits(ComponentKind.BINDING_AGENT)


def test_overloaded_marshalling_roundtrip():
    wire = MethodResult.failure(Overloaded("queue full", retry_after=7.5))
    assert not wire.ok
    with pytest.raises(Overloaded) as info:
        wire.unwrap()
    assert info.value.retry_after == 7.5
    assert "queue full" in str(info.value)
