"""Request batching: coalescing, fan-out replies, in_flight accuracy, shed."""

from __future__ import annotations

from repro.core.runtime import RetryPolicy
from repro.errors import Overloaded
from repro.flow.config import FlowConfig
from repro.metrics.counters import MetricsRegistry
from tests.core.conftest import EchoImpl, start_object

NO_RETRY = RetryPolicy(max_attempts=1)


def _pair(services):
    caller = start_object(services, EchoImpl("caller"), host=1)
    callee = start_object(services, EchoImpl("callee"), host=2)
    caller.runtime.seed_binding(callee.binding())
    callee.runtime.seed_binding(caller.binding())
    return caller, callee


def test_window_coalesces_calls_into_one_wire_message(services):
    services.flow = FlowConfig(batch_window=1.0, batch_limit=8)
    caller, callee = _pair(services)
    assert caller.runtime.enable_batching("Echo")
    kernel = services.kernel
    before = services.network.stats.messages_sent
    futs = [
        kernel.spawn(caller.runtime.invoke(callee.loid, "Echo", text))
        for text in ("a", "b", "c")
    ]
    kernel.run()
    # Three logical calls, two wire messages: one REQUEST, one REPLY.
    assert services.network.stats.messages_sent - before == 2
    assert [f.result() for f in futs] == ["callee:a", "callee:b", "callee:c"]
    batcher = caller.runtime._batcher
    assert batcher.batches_sent == 1
    assert batcher.calls_batched == 3
    stats = caller.runtime.stats
    assert stats.invocations == 3
    assert stats.requests_sent == 1
    assert stats.replies_received == 1


def test_batch_limit_flushes_early_and_singles_degrade(services):
    services.flow = FlowConfig(batch_window=5.0, batch_limit=2)
    caller, callee = _pair(services)
    assert caller.runtime.enable_batching("Echo")
    kernel = services.kernel
    before = services.network.stats.messages_sent
    futs = [
        kernel.spawn(caller.runtime.invoke(callee.loid, "Echo", text))
        for text in ("a", "b", "c")
    ]
    kernel.run()
    # a+b hit the limit and flush immediately; c waits out the window and
    # degrades to a plain request (no wrapper for a batch of one).
    assert [f.result() for f in futs] == ["callee:a", "callee:b", "callee:c"]
    assert services.network.stats.messages_sent - before == 4
    batcher = caller.runtime._batcher
    assert batcher.batches_sent == 1
    assert batcher.calls_batched == 2


def test_enable_batching_requires_a_window(services):
    # Without a FlowConfig (or with batch_window=0) opting in is a no-op.
    no_flow = start_object(services, EchoImpl("plain"), host=1)
    assert not no_flow.runtime.enable_batching("Echo")
    assert no_flow.runtime._batcher is None

    services.flow = FlowConfig(batch_window=0.0)
    windowless = start_object(services, EchoImpl("windowless"), host=2)
    assert not windowless.runtime.enable_batching("Echo")
    assert windowless.runtime._batcher is None


def test_in_flight_tracks_every_batch_member(services):
    """Satellite: ObjectServer.in_flight stays accurate under batched dispatch."""
    services.flow = FlowConfig(batch_window=1.0, batch_limit=8)
    caller, callee = _pair(services)
    assert caller.runtime.enable_batching("Slow")
    kernel = services.kernel
    futs = [
        kernel.spawn(caller.runtime.invoke(callee.loid, "Slow", 2.0))
        for _ in range(3)
    ]
    observed = []
    # Flush at t=1, arrival ~t=2, members run until ~t=4.
    kernel.schedule(3.0, lambda: observed.append(callee.in_flight))
    kernel.run()
    assert all(f.exception() is None for f in futs)
    assert observed == [3], "each batch member must count toward in_flight"
    assert callee.in_flight == 0, "all members must be decremented on settle"
    # The request metric counts logical requests, not wire messages.
    assert services.metrics.get(callee.component, MetricsRegistry.REQUESTS) == 3


def test_oversized_batch_is_shed_not_starved(services):
    """A batch wider than the server's capacity sheds every member at once.

    Queueing it would deadlock the admission queue: the pump can never
    free `size > capacity` slots simultaneously, so the batch would sit
    at the head of the line forever.
    """
    services.flow = FlowConfig(
        capacity=2, queue_limit=4, batch_window=1.0, batch_limit=8
    )
    caller, callee = _pair(services)
    caller.runtime.retry_policy = NO_RETRY
    assert caller.runtime.enable_batching("Echo")
    kernel = services.kernel
    futs = [
        kernel.spawn(caller.runtime.invoke(callee.loid, "Echo", text))
        for text in ("a", "b", "c")
    ]
    kernel.run()
    for fut in futs:
        assert isinstance(fut.exception(), Overloaded)
    assert callee.admission.stats.shed == {"capacity": 3}
    # Shed accounting is per logical request on the server...
    assert services.metrics.get(callee.component, MetricsRegistry.SHED) == 3
    assert services.metrics.get(callee.component, MetricsRegistry.REQUESTS) == 0
    # ...and per wire reply on the client (one Overloaded REPLY message).
    assert caller.runtime.stats.shed == 1


def test_batch_within_capacity_is_admitted_whole(services):
    services.flow = FlowConfig(
        capacity=2, queue_limit=4, batch_window=1.0, batch_limit=2
    )
    caller, callee = _pair(services)
    assert caller.runtime.enable_batching("Echo")
    kernel = services.kernel
    futs = [
        kernel.spawn(caller.runtime.invoke(callee.loid, "Echo", text))
        for text in ("a", "b")
    ]
    kernel.run()
    assert [f.result() for f in futs] == ["callee:a", "callee:b"]
    assert callee.admission.stats.admitted == 2
    assert callee.admission.stats.shed == {}
