"""Credit-based backpressure: window mechanics and end-to-end bounding."""

from __future__ import annotations

from repro.flow.config import FlowConfig
from repro.flow.credits import CreditLedger, CreditWindow
from tests.core.conftest import EchoImpl, start_object

# ----------------------------------------------------------------- unit level


def test_window_grants_until_empty_then_parks_waiters():
    window = CreditWindow(2)
    assert window.try_acquire() is None
    assert window.try_acquire() is None
    assert not window.headroom
    first = window.try_acquire()
    second = window.try_acquire()
    assert first is not None and not first.done()
    assert second is not None and not second.done()
    # A release hands the credit straight to the oldest waiter (FIFO).
    window.release()
    assert first.done() and not second.done()
    window.release()
    assert second.done()
    # Waiters consumed the released credits; the pool is still empty.
    assert window.available == 0


def test_release_never_overfills_the_window():
    window = CreditWindow(3)
    for _ in range(5):
        window.release()
    assert window.available == 3
    assert window.try_acquire() is None
    assert window.available == 2


def test_release_works_as_future_done_callback():
    window = CreditWindow(1)
    assert window.try_acquire() is None
    waiter = window.try_acquire()
    window.release(object())  # the settled future arg is ignored
    assert waiter.done()


def test_ledger_keys_windows_and_reports_headroom():
    ledger = CreditLedger(1)
    window = ledger.window("loid-1", "host:1")
    assert window is ledger.window("loid-1", "host:1")
    assert window is not ledger.window("loid-1", "host:2")
    assert ledger.has_headroom("loid-9", "host:9")  # unknown => no debt
    assert ledger.has_headroom("loid-1", "host:1")
    window.try_acquire()
    assert not ledger.has_headroom("loid-1", "host:1")


# ----------------------------------------------------------- integration level


def test_credit_window_bounds_concurrency_end_to_end(services):
    services.flow = FlowConfig(credit_window=2)
    caller = start_object(services, EchoImpl("caller"), host=1)
    callee = start_object(services, EchoImpl("callee"), host=2)
    caller.runtime.seed_binding(callee.binding())
    callee.runtime.seed_binding(caller.binding())
    kernel = services.kernel
    futs = [
        kernel.spawn(caller.runtime.invoke(callee.loid, "Slow", 2.0))
        for _ in range(6)
    ]
    peak = [0]

    def sample():
        peak[0] = max(peak[0], callee.in_flight)
        if not all(f.done() for f in futs):
            kernel.schedule(0.25, sample)

    kernel.schedule(0.25, sample)
    kernel.run()
    assert all(f.exception() is None for f in futs)
    # Two credits per (identity, element): never more than 2 dispatched.
    assert peak[0] == 2
    # Six sends against two credits: exactly four had to park first.
    assert caller.runtime.stats.credit_waits == 4
    assert caller.runtime.stats.requests_sent == 6
    assert caller.runtime.stats.replies_received == 6


def test_timeouts_release_credits_so_traffic_resumes(services):
    services.flow = FlowConfig(credit_window=1)
    caller = start_object(services, EchoImpl("caller"), host=1)
    callee = start_object(services, EchoImpl("callee"), host=2)
    caller.runtime.seed_binding(callee.binding())
    callee.runtime.seed_binding(caller.binding())
    kernel = services.kernel
    # A call that times out client-side while the server still grinds.
    slow = kernel.spawn(
        caller.runtime.invoke(callee.loid, "Slow", 50.0, timeout=5.0)
    )
    quick_holder = []
    kernel.schedule(
        1.0,
        lambda: quick_holder.append(
            kernel.spawn(caller.runtime.invoke(callee.loid, "Echo", "next"))
        ),
    )
    kernel.run(until=40.0)
    (quick,) = quick_holder
    assert slow.done() and slow.exception() is not None
    # The timeout settled the wire future, which released the credit: the
    # second call went through instead of deadlocking on a lost credit.
    assert quick.done() and quick.result() == "callee:next"
    assert caller.runtime.stats.credit_waits == 1
