"""Compiled event streams and the rich-object replay."""

from repro.scenarios import (
    ScenarioDriver,
    compile_events,
    deploy,
    from_dict,
    get_scenario,
    per_tick_arrivals,
    stream_stats,
)

TINY = {
    "name": "tiny",
    "sites": 2,
    "n_classes": 2,
    "mix": {"kinds": {"work": 0.7, "read": 0.3}, "locality": 0.8},
    "phases": [
        {
            "name": "only",
            "duration": 120.0,
            "arrival": {"kind": "poisson", "rate": 0.5},
            "session": {
                "think_time": 5.0,
                "p_continue": 0.5,
                "p_abandon": 0.5,
                "max_requests": 3,
            },
        }
    ],
}


def test_compilation_is_deterministic_per_seed():
    spec = from_dict(TINY)
    assert compile_events(spec, 3) == compile_events(spec, 3)
    a, b = compile_events(spec, 1), compile_events(spec, 2)
    assert a != b  # different seeds draw different streams


def test_stream_stats_account_for_every_session():
    spec = from_dict(TINY)
    plan = compile_events(spec, 0)
    stats = stream_stats(plan)
    assert stats["sessions"] == sum(per_tick_arrivals(plan))
    assert stats["sessions"] == stats["completed"] + stats["abandoned"]
    assert stats["requests"] >= stats["sessions"]
    assert stats["denied"] == 0  # no privileged kind in the mix


def test_rate_scale_multiplies_the_offered_load():
    spec = from_dict(TINY)
    base = stream_stats(compile_events(spec, 0))["sessions"]
    scaled = stream_stats(compile_events(spec, 0, rate_scale=4.0))["sessions"]
    assert scaled > 2 * base


def test_arrivals_respect_site_and_class_bounds():
    spec = get_scenario("multi-tenant")
    plan = compile_events(spec, 0)
    for tick in plan:
        for a in tick.arrivals:
            assert 0 <= a.site < spec.sites
            assert 0 <= a.target_site < spec.sites
            assert 0 <= a.klass < spec.n_classes
            assert 0 <= a.tenant < len(spec.tenants)
            assert 0 <= a.slot < spec.targets_per_site
            assert len(a.requests) >= 1
            assert a.requests[0].think == 0.0


def test_rich_replay_conserves_sessions_and_settles():
    spec = from_dict(TINY)
    plan = compile_events(spec, 0)
    dep = deploy(spec, 0)
    driver = ScenarioDriver(dep, plan)
    fut = driver.start()
    dep.system.kernel.run_until_complete(fut, max_events=5_000_000)
    dep.system.kernel.run()
    expected = stream_stats(plan)
    assert driver.sessions.started == expected["sessions"]
    assert driver.sessions.completed == expected["completed"]
    assert driver.sessions.abandoned == expected["abandoned"]
    assert driver.sessions.active == 0
    counts = driver.outcome_counts()
    assert counts["failed"] == 0
    assert counts["pending"] == 0
    assert counts["ok"] == expected["requests"]


def test_replay_is_paced_not_front_loaded():
    """Arrivals land at base + offset, not all at once at spawn time."""
    spec = from_dict(TINY)
    plan = compile_events(spec, 0)
    dep = deploy(spec, 0)
    driver = ScenarioDriver(dep, plan)
    fut = driver.start()
    dep.system.kernel.run_until_complete(fut, max_events=5_000_000)
    issues = [rec["issue"] - driver.t_base for rec in driver.records]
    assert min(issues) >= 0.0
    assert max(issues) > spec.duration / 2  # the timeline actually elapsed
