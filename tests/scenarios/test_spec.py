"""Scenario spec validation: actionable errors, loader, catalog."""

import pytest

from repro.scenarios import (
    ScenarioSpecError,
    catalog,
    from_dict,
    get_scenario,
    scenario_names,
    validate,
)
from repro.scenarios.spec import ScenarioSpec


def minimal(**overrides):
    data = {
        "name": "t",
        "phases": [{"name": "p", "duration": 100.0}],
    }
    data.update(overrides)
    return data


def test_minimal_spec_builds_with_defaults():
    spec = from_dict(minimal())
    assert spec.name == "t"
    assert spec.sites == 2
    assert spec.duration == 100.0
    assert spec.targets_total == spec.n_classes * spec.sites


def test_unknown_top_level_key_names_the_valid_ones():
    with pytest.raises(ScenarioSpecError) as err:
        from_dict(minimal(durration=5))
    assert "unknown key 'durration'" in str(err.value)
    assert "'description'" in str(err.value)  # the valid keys are listed


def test_unknown_nested_key_names_the_path():
    bad = minimal()
    bad["phases"][0]["arrival"] = {"kindd": "poisson"}
    with pytest.raises(ScenarioSpecError) as err:
        from_dict(bad)
    assert "phases[0].arrival" in str(err.value)
    assert "kindd" in str(err.value)


def test_missing_name_is_actionable():
    with pytest.raises(ScenarioSpecError):
        from_dict({"phases": [{"name": "p", "duration": 1.0}]})


@pytest.mark.parametrize(
    ("mutate", "needle"),
    [
        (lambda d: d.update(sites=0), "sites"),
        (lambda d: d.update(tick_ms=0), "tick_ms"),
        (lambda d: d.update(service_time=-1), "service_time"),
        (lambda d: d.update(phases=[]), "at least one phase"),
        (
            lambda d: d["phases"][0].update(duration=0),
            "phases[0].duration",
        ),
        (
            lambda d: d["phases"][0].update(
                arrival={"kind": "bursty"}
            ),
            "unknown arrival kind 'bursty'",
        ),
        (
            lambda d: d["phases"][0].update(
                session={"p_continue": 0.8, "p_abandon": 0.8}
            ),
            "must sum to 1",
        ),
        (
            lambda d: d.update(mix={"kinds": {"telnet": 1.0}}),
            "unknown request kind",
        ),
        (
            lambda d: d.update(mix={"kinds": {"work": 0.5}}),
            "sum to 1",
        ),
        (
            lambda d: d.update(mix={"kinds": {"work": 1.0}, "locality": 1.5}),
            "locality",
        ),
        (
            lambda d: d.update(
                tenants=[{"name": "a"}, {"name": "a"}]
            ),
            "unique",
        ),
        (
            lambda d: d.update(tenants=[{"name": "a", "weight": 0}]),
            "tenants[0].weight",
        ),
    ],
)
def test_invalid_specs_fail_with_the_offending_path(mutate, needle):
    data = minimal()
    mutate(data)
    with pytest.raises(ScenarioSpecError) as err:
        from_dict(data)
    assert needle in str(err.value)


def test_validate_accepts_already_built_specs():
    spec = from_dict(minimal())
    assert validate(spec) is spec


def test_capacity_is_targets_over_service_time():
    spec = from_dict(minimal(sites=3, n_classes=2, service_time=2.0))
    assert spec.capacity_per_ms() == spec.targets_total / 2.0


# ----------------------------------------------------------------- catalog


def test_catalog_has_the_five_required_scenarios():
    names = scenario_names()
    assert len(names) >= 5
    for required in (
        "diurnal-regional",
        "flash-crowd",
        "multi-tenant",
        "scientific-batch",
        "repository",
    ):
        assert required in names


def test_every_catalog_entry_is_a_validated_spec():
    for name, spec in catalog().items():
        assert isinstance(spec, ScenarioSpec)
        assert spec.name == name
        assert validate(spec) is spec
        assert spec.duration > 0


def test_get_scenario_miss_lists_the_catalog():
    with pytest.raises(ScenarioSpecError) as err:
        get_scenario("nope")
    assert "diurnal-regional" in str(err.value)


def test_multi_tenant_gates_privileged_behind_a_privileged_tenant():
    spec = get_scenario("multi-tenant")
    assert "privileged" in spec.mix.kinds
    assert any(t.privileged for t in spec.tenants)
    assert any(not t.privileged for t in spec.tenants)
