"""Tests for bootstrap (4.2.1) and the LegionSystem facade."""

import pytest

from repro import errors
from repro.core.class_types import ClassFlavor
from repro.core.context import SystemServices
from repro.core.relations import RelationGraph
from repro.metrics.counters import MetricsRegistry
from repro.net.latency import LatencyModel
from repro.net.network import Network
from repro.simkernel.kernel import SimKernel
from repro.simkernel.rng import RngStreams
from repro.system.bootstrap import CORE_CLASS_SPECS, bootstrap_core
from repro.system.legion import LegionSystem, SiteSpec
from repro.workloads.apps import CounterImpl, KVStoreImpl


def bare_services():
    kernel = SimKernel()
    rng = RngStreams(3)
    return SystemServices(
        kernel=kernel,
        network=Network(kernel, LatencyModel.uniform(1.0), rng=rng.stream("n")),
        rng=rng,
        metrics=MetricsRegistry(),
        relations=RelationGraph(),
    )


class TestBootstrapCore:
    def test_all_six_cores_started(self):
        services = bare_services()
        core = bootstrap_core(services, core_host=1)
        assert set(core.servers) == set(CORE_CLASS_SPECS)
        for role in CORE_CLASS_SPECS:
            assert services.well_known[role] == core.loid(role)
            assert services.network.is_registered(
                core.servers[role].element
            )

    def test_second_bootstrap_rejected(self):
        services = bare_services()
        bootstrap_core(services, core_host=1)
        with pytest.raises(errors.BootstrapError):
            bootstrap_core(services, core_host=1)

    def test_fig7_relations_recorded(self):
        services = bare_services()
        core = bootstrap_core(services, core_host=1)
        relations = services.relations
        legion_object = core.loid("LegionObject")
        assert relations.superclass_of(core.loid("LegionClass")) == legion_object
        assert relations.superclass_of(core.loid("LegionHost")) == legion_object
        assert relations.sinks() == [legion_object]

    def test_core_flavors(self):
        services = bare_services()
        core = bootstrap_core(services, core_host=1)
        assert core["LegionObject"].impl.flavor & ClassFlavor.ABSTRACT
        assert core["LegionHost"].impl.flavor & ClassFlavor.ABSTRACT
        assert core["LegionClass"].impl.flavor == ClassFlavor.REGULAR


class TestLegionSystemBuild:
    def test_empty_sites_rejected(self):
        with pytest.raises(errors.BootstrapError):
            LegionSystem.build([])

    def test_per_site_inventory(self, legion):
        system, _cls = legion
        for spec in system.sites:
            assert spec.name in system.jurisdictions
            assert spec.name in system.magistrates
            assert spec.name in system.agents
            assert len(system.site_hosts[spec.name]) == spec.hosts

    def test_hosts_assigned_to_sites_in_latency_model(self, legion):
        system, _cls = legion
        for spec in system.sites:
            for host_id in system.site_hosts[spec.name]:
                assert system.network.latency.site_of(host_id) == spec.name

    def test_fig8_host_classes_exist(self, legion):
        system, _cls = legion
        relations = system.services.relations
        unix = system.standard_classes["UnixHost"].loid
        smmp = system.standard_classes["UnixSMMP"].loid
        assert relations.superclass_of(unix) == system.core.loid("LegionHost")
        assert relations.superclass_of(smmp) == unix

    def test_spmd_site_runs_spmd_hosts(self):
        system = LegionSystem.build(
            [SiteSpec("hpc", hosts=1, host_type="cm-5")], seed=3
        )
        host = list(system.host_servers.values())[0]
        assert host.impl.platform == "cm-5"

    def test_mixed_host_types(self):
        system = LegionSystem.build(
            [
                SiteSpec("ws", hosts=1, host_type="unix"),
                SiteSpec("big", hosts=1, host_type="unix-smmp"),
                SiteSpec("hpc", hosts=1, host_type="cray-t3d"),
            ],
            seed=3,
        )
        platforms = {s.impl.platform for s in system.host_servers.values()}
        assert platforms == {"unix", "unix-smmp", "cray-t3d"}


class TestFacade:
    def test_context_names_resolve_in_calls(self, legion):
        system, cls = legion
        system.create_instance(cls.loid, context_name="facade/c1")
        assert system.call("facade/c1", "Ping") == "pong"

    def test_create_class_binds_context_name(self, legion):
        system, _cls = legion
        binding = system.create_class("KV", factory=KVStoreImpl)
        assert system.lookup("classes/KV") == binding.loid

    def test_create_class_from_named_superclass(self, legion):
        system, _cls = legion
        system.create_class("Base2", factory=CounterImpl)
        sub = system.create_class("Sub2", superclass="classes/Base2")
        relations = system.services.relations
        assert relations.superclass_of(sub.loid) == system.lookup("classes/Base2")

    def test_new_client_is_not_a_legion_resource(self, legion):
        system, _cls = legion
        client = system.new_client("outsider", site=system.sites[1].name)
        # Clients never enter the relation graph (no is-a edge).
        assert client.loid not in system.services.relations
        # But they can call into Legion.
        assert system.call(
            system.core.loid("LegionClass"), "ClassCount", client=client
        ) > 0

    def test_reset_measurements(self, legion):
        system, cls = legion
        system.call(cls.loid, "GetInstanceInterface")
        system.reset_measurements()
        assert system.network.stats.messages_sent == 0
        assert system.services.metrics.components() == []

    def test_binding_ttl_option(self):
        system = LegionSystem.build(
            [SiteSpec("a", hosts=2)], seed=5, binding_ttl=500.0
        )
        cls = system.create_class("Counter", factory=CounterImpl)
        assert cls.expires_at != float("inf")
