"""Unit tests for TraceContext, Span, and SpanRecorder."""

from repro.simkernel.kernel import SimKernel
from repro.trace.context import TraceContext
from repro.trace.recorder import SpanRecorder


def make_recorder():
    return SpanRecorder(SimKernel())


class TestTraceContext:
    def test_frozen_value_semantics(self):
        a = TraceContext(1, 2, 3)
        b = TraceContext(1, 2, 3)
        assert a == b
        assert hash(a) == hash(b)

    def test_child_of(self):
        parent = TraceContext(7, 4, 1)
        child = parent.child_of(9)
        assert child.trace_id == 7
        assert child.span_id == 9
        assert child.parent_id == 4


class TestSpanRecorder:
    def test_none_parent_roots_a_fresh_trace(self):
        rec = make_recorder()
        a = rec.start("op-a", "invoke")
        b = rec.start("op-b", "invoke")
        assert a.parent_id == b.parent_id == 0
        assert a.trace_id != b.trace_id

    def test_children_inherit_the_trace(self):
        rec = make_recorder()
        root = rec.start("op", "invoke")
        child = rec.start("req", "request", parent=root.context)
        assert child.trace_id == root.trace_id
        assert child.parent_id == root.span_id

    def test_span_ids_are_sequential(self):
        rec = make_recorder()
        ids = [rec.start(f"s{i}", "invoke").span_id for i in range(4)]
        assert ids == [1, 2, 3, 4]

    def test_finish_is_idempotent_and_stamps_kernel_time(self):
        rec = make_recorder()
        span = rec.start("op", "invoke")
        rec.kernel.post(5.0, lambda: rec.finish(span))
        rec.kernel.run()
        first_end = span.end
        rec.finish(span, "late-status")  # end already set: kept
        assert span.end == first_end == 5.0
        assert span.status == "late-status"

    def test_finish_default_keeps_ok(self):
        rec = make_recorder()
        span = rec.start("op", "invoke")
        rec.finish(span)
        assert span.status == "ok"

    def test_instant_spans_have_zero_duration(self):
        rec = make_recorder()
        span = rec.instant("hit", "resolve", cache="hit")
        assert span.duration == 0.0
        assert span.annotations == {"cache": "hit"}

    def test_annotate_via_context(self):
        rec = make_recorder()
        span = rec.start("op", "invoke")
        rec.annotate(span.context, target="X")
        rec.annotate(None, ignored=True)  # no-op, no raise
        assert span.annotations == {"target": "X"}

    def test_clear_drops_spans_but_not_counters(self):
        rec = make_recorder()
        first = rec.start("a", "invoke")
        rec.clear()
        assert rec.spans == []
        second = rec.start("b", "invoke")
        # Ids keep counting: unique across the whole run, and the
        # allocation sequence stays a pure function of execution order.
        assert second.span_id > first.span_id
        assert second.trace_id > first.trace_id

    def test_roots_of_a_subset_include_orphans(self):
        rec = make_recorder()
        root = rec.start("op", "invoke")
        child = rec.start("req", "request", parent=root.context)
        grand = rec.start("handle", "handle", parent=child.context)
        # Slice that omits the true root: the request becomes the root.
        assert rec.roots([child, grand]) == [child]
        assert rec.roots() == [root]

    def test_len_counts_spans(self):
        rec = make_recorder()
        rec.start("a", "invoke")
        rec.instant("b", "event")
        assert len(rec) == 2
