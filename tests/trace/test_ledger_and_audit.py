"""LoadLedger shape extraction and the TraceAudit assertions."""

import pytest

from repro.simkernel.kernel import SimKernel
from repro.trace.audit import TraceAudit, load_slope_finding
from repro.trace.ledger import LoadLedger
from repro.trace.recorder import SpanRecorder


def walk(rec, caller, tiers):
    """One logical operation: a request/handle chain through ``tiers``."""
    root = rec.start("invoke Op", "invoke", component=caller)
    parent = root
    for component in tiers:
        req = rec.start(
            "request Op", "request", parent=parent.context, component=parent.component
        )
        handle = rec.start(
            "handle Op", "handle", parent=req.context, component=component
        )
        parent = handle
    for span in reversed(rec.spans):
        rec.finish(span)
    return root


@pytest.fixture
def rec():
    return SpanRecorder(SimKernel())


class TestLoadLedger:
    def test_handled_counts_handle_spans_per_component(self, rec):
        walk(rec, "client:a", ["binding-agent:s0", "class-object:C"])
        walk(rec, "client:b", ["binding-agent:s0"])
        ledger = LoadLedger(rec.spans)
        assert ledger.handled == {
            "binding-agent:s0": 2,
            "class-object:C": 1,
        }
        assert ledger.loads("binding-agent:") == {"binding-agent:s0": 2}
        assert ledger.max_load() == ("binding-agent:s0", 2)
        assert ledger.max_load("magistrate:") == ("", 0)

    def test_fan_in_counts_distinct_senders(self, rec):
        walk(rec, "client:a", ["binding-agent:s0"])
        walk(rec, "client:b", ["binding-agent:s0"])
        walk(rec, "client:b", ["binding-agent:s0"])  # repeat sender
        ledger = LoadLedger(rec.spans)
        assert ledger.fan_in("binding-agent:s0") == 2
        assert ledger.fan_ins("binding-agent:") == {"binding-agent:s0": 2}

    def test_hop_depth_is_max_request_chain(self, rec):
        walk(rec, "client:a", ["t1", "t2", "t3"])  # depth 3
        walk(rec, "client:b", ["t1"])  # depth 1
        ledger = LoadLedger(rec.spans)
        assert sorted(ledger.hop_depths()) == [1, 3]
        assert ledger.max_hop_depth() == 3
        assert ledger.hop_histogram() == {1: 1, 3: 1}

    def test_parallel_fanout_is_not_depth(self, rec):
        # One operation sending two *sibling* requests is depth 1, not 2.
        root = rec.start("invoke", "invoke", component="client:a")
        for i in range(2):
            req = rec.start(
                "request", "request", parent=root.context, component="client:a"
            )
            rec.start(f"handle{i}", "handle", parent=req.context, component=f"s:{i}")
        ledger = LoadLedger(rec.spans)
        assert ledger.hop_depths() == [1]

    def test_empty_ledger(self):
        ledger = LoadLedger([])
        assert ledger.handled == {}
        assert ledger.max_hop_depth() == 0
        assert ledger.duration == 0.0
        assert ledger.load_rate("x") == 0.0


class TestTraceAudit:
    def test_hop_bound_pass_and_fail(self, rec):
        walk(rec, "client:a", ["t1", "t2"])
        assert TraceAudit(rec.spans).hop_bound(2).passed
        finding = TraceAudit(rec.spans).hop_bound(1)
        assert not finding.passed
        assert "max depth 2" in finding.detail

    def test_exact_depth(self, rec):
        walk(rec, "client:a", ["t1"])
        assert TraceAudit(rec.spans).exact_depth(1).passed
        assert not TraceAudit(rec.spans).exact_depth(2).passed
        assert not TraceAudit([]).exact_depth(1).passed  # vacuous != pass

    def test_fan_in_bound(self, rec):
        for client in ("a", "b", "c"):
            walk(rec, f"client:{client}", ["binding-agent:tree-l0-0"])
        audit = TraceAudit(rec.spans)
        assert audit.fan_in_bound(3, "binding-agent:tree-").passed
        assert not audit.fan_in_bound(2, "binding-agent:tree-").passed

    def test_fan_in_bound_requires_matching_components(self, rec):
        walk(rec, "client:a", ["binding-agent:flat0"])
        finding = TraceAudit(rec.spans).fan_in_bound(4, "binding-agent:tree-")
        assert not finding.passed
        assert "no components" in finding.detail

    def test_reconciliation_agrees_with_exact_counters(self, rec):
        walk(rec, "client:a", ["binding-agent:s0", "class-object:C"])
        audit = TraceAudit(rec.spans)
        counted = {"binding-agent:s0": 1, "class-object:C": 1, "client:a": 0}
        assert audit.reconciles_with(counted).passed

    def test_reconciliation_flags_mismatches(self, rec):
        walk(rec, "client:a", ["binding-agent:s0"])
        audit = TraceAudit(rec.spans)
        off_by_one = audit.reconciles_with({"binding-agent:s0": 2})
        assert not off_by_one.passed
        assert "binding-agent:s0" in off_by_one.detail
        missing = audit.reconciles_with({})
        assert not missing.passed

    def test_finding_renders_like_a_check(self, rec):
        walk(rec, "client:a", ["t1"])
        finding = TraceAudit(rec.spans).hop_bound(6)
        assert str(finding).startswith("[PASS] ")
        assert bool(finding)


class TestLoadSlope:
    def _points(self, loads):
        points = []
        for x, n in loads:
            rec = SpanRecorder(SimKernel())
            for i in range(n):
                walk(rec, f"client:{i}", ["binding-agent:s0"])
            points.append((float(x), LoadLedger(rec.spans)))
        return points

    def test_flat_load_passes(self):
        finding = load_slope_finding(
            self._points([(2, 3), (4, 3), (8, 3)]), "binding-agent:", limit=0.35
        )
        assert finding.passed

    def test_linear_growth_fails(self):
        finding = load_slope_finding(
            self._points([(2, 2), (4, 4), (8, 8)]), "binding-agent:", limit=0.35
        )
        assert not finding.passed
        assert "slope" in finding.detail

    def test_negligible_load_passes_outright(self):
        finding = load_slope_finding(
            self._points([(2, 0), (4, 1), (8, 0)]), "binding-agent:", limit=0.35
        )
        assert finding.passed
        assert "negligible" in finding.detail
