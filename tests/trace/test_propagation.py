"""End-to-end causal tracing through a live Legion system.

These tests exercise the wiring, not the recorder: contexts must ride
Message envelopes and CallEnvironments across every hop, the no-op mode
must leave the message plane untouched, and traced runs must stay
deterministic (the --jobs contract).
"""


from repro.experiments import e1_binding_path
from repro.system.legion import LegionSystem, SiteSpec
from repro.trace.ledger import LoadLedger
from repro.workloads.apps import CounterImpl


def build_system(seed=21):
    system = LegionSystem.build(
        [SiteSpec("uva", hosts=2), SiteSpec("doe", hosts=2)], seed=seed
    )
    cls = system.create_class("Counter", factory=CounterImpl)
    return system, cls


class TestPropagation:
    def test_one_call_yields_one_connected_trace(self):
        system, cls = build_system()
        target = system.create_instance(cls.loid)
        tracer = system.enable_tracing()
        client = system.new_client("t-client")
        system.call(target.loid, "Ping", client=client)

        assert tracer.spans
        trace_ids = {s.trace_id for s in tracer.spans}
        assert len(trace_ids) == 1  # every hop joined the same trace
        by_id = {s.span_id: s for s in tracer.spans}
        roots = [s for s in tracer.spans if s.parent_id == 0]
        assert len(roots) == 1
        assert roots[0].kind == "invoke"
        for span in tracer.spans:
            if span.parent_id:
                assert span.parent_id in by_id  # fully connected tree
            assert span.end is not None  # nothing left dangling

    def test_server_side_spans_carry_component_labels(self):
        system, cls = build_system()
        target = system.create_instance(cls.loid)
        tracer = system.enable_tracing()
        system.call(target.loid, "Ping", client=system.new_client("t2"))
        handles = [s for s in tracer.spans if s.kind == "handle"]
        assert handles
        assert any(s.component.startswith("binding-agent:") for s in handles)
        assert any(s.component.startswith("application:") for s in handles)

    def test_request_spans_record_link_class_and_status(self):
        system, cls = build_system()
        target = system.create_instance(cls.loid)
        tracer = system.enable_tracing()
        system.call(target.loid, "Ping", client=system.new_client("t3"))
        requests = [s for s in tracer.spans if s.kind == "request"]
        assert requests
        assert all(
            s.link in ("same-host", "same-site", "wide-area") for s in requests
        )
        assert all(s.status == "ok" for s in requests)

    def test_nested_server_calls_stay_in_the_callers_trace(self):
        # A cold resolve makes the Binding Agent invoke further objects
        # from *inside* its dispatched method; those inner invokes must
        # parent under the agent's handle span, not root new traces.
        system, cls = build_system()
        target = system.create_instance(cls.loid)
        tracer = system.enable_tracing()
        system.call(target.loid, "Ping", client=system.new_client("t4"))
        agent_invokes = [
            s
            for s in tracer.spans
            if s.kind == "invoke" and s.component.startswith("binding-agent:")
        ]
        assert agent_invokes
        by_id = {s.span_id: s for s in tracer.spans}
        for span in agent_invokes:
            assert by_id[span.parent_id].kind == "handle"


class TestNoOpMode:
    def test_tracing_is_off_by_default(self):
        system, cls = build_system()
        assert system.services.tracer is None
        target = system.create_instance(cls.loid)
        client = system.new_client("off")
        system.call(target.loid, "Ping", client=client)
        # The hot-path side tables never populate in no-op mode.
        assert client.runtime._request_spans == {}

    def test_disable_returns_to_noop(self):
        system, cls = build_system()
        tracer = system.enable_tracing()
        system.disable_tracing()
        target = system.create_instance(cls.loid)
        system.call(target.loid, "Ping", client=system.new_client("off2"))
        assert tracer.spans == []
        assert system.services.tracer is None

    def test_paused_recorder_records_nothing(self):
        system, cls = build_system()
        tracer = system.enable_tracing()
        tracer.active = False
        target = system.create_instance(cls.loid)
        system.call(target.loid, "Ping", client=system.new_client("paused"))
        assert tracer.spans == []

    def test_reset_measurements_clears_spans(self):
        system, cls = build_system()
        target = system.create_instance(cls.loid)
        tracer = system.enable_tracing()
        system.call(target.loid, "Ping", client=system.new_client("warm"))
        assert tracer.spans
        system.reset_measurements()
        assert tracer.spans == []


class TestDeterminism:
    def test_identical_span_trees_and_files_across_runs(self, tmp_path):
        def traced_run(subdir):
            out = tmp_path / subdir
            result = e1_binding_path.run(quick=True, seed=5, trace=str(out))
            assert result.passed, result.render()
            return (out / "e1-seed5.trace.json").read_bytes(), result.render()

        bytes_a, report_a = traced_run("a")
        bytes_b, report_b = traced_run("b")
        assert bytes_a == bytes_b
        # Reports embed the trace path; normalise the directory away.
        assert report_a.replace(str(tmp_path / "a"), "") == report_b.replace(
            str(tmp_path / "b"), ""
        )

    def test_span_ids_follow_execution_order(self):
        def spans_of(seed):
            system, cls = build_system(seed=seed)
            target = system.create_instance(cls.loid)
            tracer = system.enable_tracing()
            system.call(target.loid, "Ping", client=system.new_client("d"))
            return [
                (s.span_id, s.parent_id, s.kind, s.name, s.component, s.start)
                for s in tracer.spans
            ]

        assert spans_of(3) == spans_of(3)


class TestLedgerOverLiveTraffic:
    def test_ledger_matches_metric_counters(self):
        system, cls = build_system()
        target = system.create_instance(cls.loid)
        tracer = system.enable_tracing()
        system.reset_measurements()
        system.call(target.loid, "Ping", client=system.new_client("led"))
        ledger = LoadLedger(tracer.spans)
        assert ledger.loads() == system.services.metrics.labelled_counts()
