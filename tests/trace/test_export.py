"""Chrome trace_event export and the text summary."""

import json

from repro.simkernel.kernel import SimKernel
from repro.trace.export import chrome_trace, text_summary, write_chrome_trace
from repro.trace.recorder import SpanRecorder


def sample_recorder():
    rec = SpanRecorder(SimKernel())
    root = rec.start("invoke Ping", "invoke", component="client:a")
    req = rec.start(
        "request Ping",
        "request",
        parent=root.context,
        component="client:a",
        link="wide-area",
    )
    handle = rec.start(
        "handle Ping", "handle", parent=req.context, component="application:O"
    )
    handle.annotate(cache="miss")
    rec.kernel.post(4.0, lambda: [rec.finish(s) for s in (handle, req, root)])
    rec.kernel.run()
    return rec


class TestChromeTrace:
    def test_document_shape(self):
        doc = chrome_trace(sample_recorder().spans)
        assert doc["displayTimeUnit"] == "ms"
        xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        metas = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert len(xs) == 3
        # One process_name record per distinct component.
        assert {m["args"]["name"] for m in metas} == {"client:a", "application:O"}

    def test_times_are_simulated_microseconds(self):
        doc = chrome_trace(sample_recorder().spans)
        root = next(e for e in doc["traceEvents"] if e["name"] == "invoke Ping")
        assert root["ts"] == 0.0
        assert root["dur"] == 4000.0  # 4 simulated ms

    def test_args_carry_ids_links_and_annotations(self):
        doc = chrome_trace(sample_recorder().spans)
        req = next(e for e in doc["traceEvents"] if e["name"] == "request Ping")
        handle = next(e for e in doc["traceEvents"] if e["name"] == "handle Ping")
        assert req["args"]["link"] == "wide-area"
        assert handle["args"]["parent_id"] == req["args"]["span_id"]
        assert handle["args"]["cache"] == "miss"

    def test_events_share_tid_per_trace(self):
        doc = chrome_trace(sample_recorder().spans)
        tids = {e["tid"] for e in doc["traceEvents"] if e["ph"] == "X"}
        assert len(tids) == 1

    def test_written_file_is_valid_json_and_deterministic(self, tmp_path):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        write_chrome_trace(sample_recorder().spans, str(a))
        write_chrome_trace(sample_recorder().spans, str(b))
        assert json.loads(a.read_text())["traceEvents"]
        assert a.read_bytes() == b.read_bytes()

    def test_open_spans_export_with_zero_duration(self):
        rec = SpanRecorder(SimKernel())
        rec.start("dangling", "invoke", component="client:a")
        doc = chrome_trace(rec.spans)
        event = next(e for e in doc["traceEvents"] if e["ph"] == "X")
        assert event["dur"] == 0.0


class TestTextSummary:
    def test_sections_present(self):
        text = text_summary(sample_recorder().spans, title="sample")
        assert text.startswith("sample\n======")
        assert "handle=1" in text and "request=1" in text
        assert "application:O" in text
        assert "hop depth histogram" in text
        assert "  1 hops" in text

    def test_empty_span_set(self):
        text = text_summary([], title="empty")
        assert "0 spans" in text
