"""Unit tests for LegionObjectImpl: exports, mandatory methods, state."""


from repro.core.object_base import (
    LegionObjectImpl,
    OBJECT_MANDATORY_INTERFACE,
    legion_method,
)
class TestExports:
    def test_object_mandatory_interface_contents(self):
        # The paper names MayI, Iam, SaveState, RestoreState among the
        # object-mandatory member functions (2.1, 2.4, 3.1.1).
        for name in ("MayI", "Iam", "Ping", "GetInterface", "SaveState", "RestoreState"):
            assert OBJECT_MANDATORY_INTERFACE.has_method(name), name

    def test_subclass_inherits_and_extends(self):
        class Thing(LegionObjectImpl):
            @legion_method("int Get()")
            def get(self):
                return 1

        iface = Thing.exported_interface()
        assert iface.has_method("Get")
        assert iface.conforms_to(OBJECT_MANDATORY_INTERFACE)

    def test_override_replaces_export(self):
        class Base(LegionObjectImpl):
            @legion_method("string Ping()")
            def ping(self):
                return "base"

        class Sub(Base):
            @legion_method("string Ping()")
            def ping(self):
                return "sub"

        export = Sub().find_export("Ping", 0)
        assert export.fn(Sub()) == "sub"

    def test_dispatch_by_arity(self):
        class Overloaded(LegionObjectImpl):
            @legion_method("int F(int)")
            def f1(self, a):
                return a

            @legion_method("int F(int, int)")
            def f2(self, a, b):
                return a + b

        obj = Overloaded()
        assert obj.find_export("F", 1).fn(obj, 5) == 5
        assert obj.find_export("F", 2).fn(obj, 5, 6) == 11
        assert obj.find_export("F", 3) is None

    def test_ctx_detection(self):
        class WithCtx(LegionObjectImpl):
            @legion_method("X()")
            def x(self, *, ctx=None):
                return ctx

            @legion_method("Y()")
            def y(self):
                return None

        assert WithCtx().find_export("X", 0).wants_ctx
        assert not WithCtx().find_export("Y", 0).wants_ctx


class TestState:
    def test_default_save_restore_roundtrip(self):
        class Stateful(LegionObjectImpl):
            def __init__(self):
                self.a = 1
                self.b = "x"
                self.transient = "not saved"

            def persistent_attributes(self):
                return ["a", "b"]

        source = Stateful()
        source.a = 42
        source.b = "hello"
        blob = source.save_state()
        target = Stateful()
        target.restore_state(blob)
        assert target.a == 42
        assert target.b == "hello"
        assert target.transient == "not saved"

    def test_stateless_objects_have_empty_state(self):
        blob = LegionObjectImpl().save_state()
        fresh = LegionObjectImpl()
        fresh.restore_state(blob)  # no-op, no error
