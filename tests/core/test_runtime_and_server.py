"""Tests for the communication layer + dispatch loop working together."""

import pytest

from repro import errors
from repro.naming.binding import Binding
from repro.net.address import AddressSemantic, ObjectAddress
from repro.security.environment import CallEnvironment
from repro.security.mayi import DenyAll

from .conftest import EchoImpl, run_call, start_object


class TestInvocation:
    def test_round_trip(self, services, echo_pair):
        caller, callee = echo_pair
        value = run_call(services, caller, callee.loid, "Echo", "hi")
        assert value == "callee:hi"

    def test_multiple_args(self, services, echo_pair):
        caller, callee = echo_pair
        assert run_call(services, caller, callee.loid, "Add", 2, 3) == 5

    def test_remote_exception_reraised_at_caller(self, services, echo_pair):
        caller, callee = echo_pair
        with pytest.raises(errors.InvocationFailed, match="intentional"):
            run_call(services, caller, callee.loid, "Fail")

    def test_method_not_found(self, services, echo_pair):
        caller, callee = echo_pair
        with pytest.raises(errors.MethodNotFound):
            run_call(services, caller, callee.loid, "Nope")

    def test_wrong_arity_is_method_not_found(self, services, echo_pair):
        caller, callee = echo_pair
        with pytest.raises(errors.MethodNotFound):
            run_call(services, caller, callee.loid, "Echo", "a", "b")

    def test_generator_method_runs_as_process(self, services, echo_pair):
        caller, callee = echo_pair
        finished_at = run_call(services, caller, callee.loid, "Slow", 10.0)
        assert finished_at >= 10.0

    def test_any_order_acceptance(self, services, echo_pair):
        # A slow call must not block a later fast one (paper section 2).
        caller, callee = echo_pair
        slow = services.kernel.spawn(
            caller.runtime.invoke(callee.loid, "Slow", 100.0)
        )
        fast = services.kernel.spawn(
            caller.runtime.invoke(callee.loid, "Echo", "quick")
        )
        services.kernel.run_until_complete(fast)
        assert not slow.done()
        services.kernel.run()
        assert slow.done()

    def test_ctx_carries_calling_agent(self, services, echo_pair):
        caller, callee = echo_pair
        who = run_call(services, caller, callee.loid, "WhoCalls")
        assert who == str(caller.loid)

    def test_mandatory_ping_and_interface(self, services, echo_pair):
        caller, callee = echo_pair
        assert run_call(services, caller, callee.loid, "Ping") == "pong"
        iface = run_call(services, caller, callee.loid, "GetInterface")
        assert iface.has_method("Echo")

    def test_iam_over_the_wire(self, services, echo_pair):
        caller, callee = echo_pair
        creds = run_call(services, caller, callee.loid, "Iam", 1234)
        assert creds.verify(1234, services.secret)


class TestSecurityGate:
    def test_mayi_refusal(self, services, echo_pair):
        caller, callee = echo_pair
        callee.impl.mayi_policy = DenyAll()
        with pytest.raises(errors.SecurityDenied):
            run_call(services, caller, callee.loid, "Echo", "x")

    def test_mayi_probe_method(self, services, echo_pair):
        caller, callee = echo_pair
        assert run_call(services, caller, callee.loid, "MayI", "Echo") is True
        callee.impl.mayi_policy = DenyAll()
        # Probing is itself refused under DenyAll -- that IS the answer.
        with pytest.raises(errors.SecurityDenied):
            run_call(services, caller, callee.loid, "MayI", "Echo")


class TestStaleBindings:
    def test_delivery_failure_without_agent_raises(self, services, echo_pair):
        caller, callee = echo_pair
        callee.deactivate()
        with pytest.raises(errors.BindingNotFound):
            run_call(services, caller, callee.loid, "Echo", "x")
        assert caller.runtime.stats.stale_detected == 1

    def test_expired_cached_binding_is_a_miss(self, services, echo_pair):
        caller, callee = echo_pair
        caller.runtime.cache.clear()
        caller.runtime.seed_binding(
            Binding(callee.loid, callee.address, expires_at=5.0)
        )
        services.kernel.run(until=10.0)
        with pytest.raises(errors.BindingNotFound):
            # Expired + no agent to refresh through.
            run_call(services, caller, callee.loid, "Echo", "x")

    def test_timeout_on_silent_drop(self, services, echo_pair):
        from repro.net.latency import LinkClass

        caller, callee = echo_pair
        services.network.drop_probability[LinkClass.WIDE_AREA] = 1.0
        services.network.drop_probability[LinkClass.SAME_SITE] = 1.0
        services.network.drop_probability[LinkClass.SAME_HOST] = 1.0
        with pytest.raises(errors.BindingNotFound) as excinfo:
            run_call(services, caller, callee.loid, "Echo", "x", timeout=50.0)
        # The chain bottoms out in the timeout-driven refresh failing.
        assert caller.runtime.stats.timeouts >= 1

    def test_late_reply_after_timeout_is_dropped(self, services, echo_pair):
        caller, callee = echo_pair
        # Slow method + short timeout: reply arrives after expiry.
        with pytest.raises(errors.BindingNotFound):
            run_call(services, caller, callee.loid, "Slow", 500.0, timeout=10.0)
        services.kernel.run()  # the late reply lands harmlessly


class TestAddressSemanticsAtRuntime:
    def test_first_tries_elements_in_order(self, services):
        caller = start_object(services, EchoImpl("caller"), host=1)
        a = start_object(services, EchoImpl("a"), host=2)
        b = start_object(services, EchoImpl("b"), host=3)
        a.deactivate()  # first element is dead
        group = ObjectAddress(
            elements=(a.element, b.element), semantic=AddressSemantic.FIRST
        )
        env = CallEnvironment.originating(caller.loid)
        fut = services.kernel.spawn(
            caller.runtime.call_address(group, b.loid, "Echo", ("x",), env)
        )
        assert services.kernel.run_until_complete(fut) == "b:x"

    def test_all_returns_every_reply(self, services):
        caller = start_object(services, EchoImpl("caller"), host=1)
        replicas = [start_object(services, EchoImpl(f"r{i}"), host=2 + i) for i in range(3)]
        group = ObjectAddress(
            elements=tuple(r.element for r in replicas),
            semantic=AddressSemantic.ALL,
        )
        env = CallEnvironment.originating(caller.loid)
        fut = services.kernel.spawn(
            caller.runtime.call_address(group, replicas[0].loid, "Echo", ("x",), env)
        )
        assert sorted(services.kernel.run_until_complete(fut)) == ["r0:x", "r1:x", "r2:x"]

    def test_k_of_n_returns_k(self, services):
        caller = start_object(services, EchoImpl("caller"), host=1)
        replicas = [start_object(services, EchoImpl(f"r{i}"), host=2 + i) for i in range(3)]
        group = ObjectAddress(
            elements=tuple(r.element for r in replicas),
            semantic=AddressSemantic.K_OF_N,
            k=2,
        )
        env = CallEnvironment.originating(caller.loid)
        fut = services.kernel.spawn(
            caller.runtime.call_address(group, replicas[0].loid, "Echo", ("x",), env)
        )
        assert len(services.kernel.run_until_complete(fut)) == 2


class TestServerLifecycle:
    def test_deactivate_unregisters_and_fails_pending(self, services, echo_pair):
        caller, callee = echo_pair
        pending = services.kernel.spawn(
            callee.runtime.invoke(caller.loid, "Slow", 100.0)
        )
        # Let the request get in flight before tearing the caller side down.
        services.kernel.run(until=5.0)
        callee.deactivate()
        services.kernel.run()
        assert pending.failed()
        assert not services.network.is_registered(callee.element)

    def test_double_deactivate_harmless(self, services, echo_pair):
        _caller, callee = echo_pair
        callee.deactivate()
        callee.deactivate()

    def test_metrics_incremented_per_request(self, services, echo_pair):
        caller, callee = echo_pair
        before = services.metrics.get(callee.component)
        run_call(services, caller, callee.loid, "Ping")
        assert services.metrics.get(callee.component) == before + 1
