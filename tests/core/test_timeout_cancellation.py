"""Regression tests: settled requests must cancel their timeout events.

Every request with a deadline schedules an ``_expire`` kernel event.  When
the request settles early -- a reply, a delivery failure, or the runtime
being torn down -- that event must be cancelled, not left to fire against
a recycled correlation id or to bump the timeout counter spuriously.
"""

import pytest

from repro import errors
from repro.naming.binding import Binding
from repro.naming.loid import LOID
from repro.net.address import ObjectAddress

from .conftest import EchoImpl, run_call, start_object


def _drain(services) -> None:
    """Run the kernel dry -- far past any pending deadline."""
    services.kernel.run()


def _black_hole_binding(services, host=3):
    """A live endpooint that swallows every message (requests vanish)."""
    element = services.network.allocate_element(host)
    services.network.register(element, lambda message: None)
    loid = LOID.for_instance(91, 1, services.secret)
    return Binding(loid, ObjectAddress.single(element))


class TestTimeoutCancellation:
    def test_reply_cancels_the_timeout_event(self, services, echo_pair):
        caller, callee = echo_pair
        assert run_call(services, caller, callee.loid, "Ping") == "pong"
        assert caller.runtime._timeout_handles == {}
        # Drive simulated time far beyond the default deadline: the
        # cancelled _expire must not fire.
        _drain(services)
        assert caller.runtime.stats.timeouts == 0

    def test_every_settled_request_releases_its_handle(self, services, echo_pair):
        caller, callee = echo_pair
        for i in range(5):
            run_call(services, caller, callee.loid, "Echo", str(i))
        assert caller.runtime._timeout_handles == {}
        assert caller.runtime._pending == {}

    def test_delivery_failure_cancels_the_timeout_event(self, services, echo_pair):
        caller, callee = echo_pair
        callee.deactivate()  # requests now bounce as stale
        with pytest.raises(errors.LegionError):
            run_call(services, caller, callee.loid, "Ping")
        assert caller.runtime._timeout_handles == {}
        _drain(services)
        assert caller.runtime.stats.timeouts == 0

    def test_fail_pending_cancels_in_flight_timeouts(self, services, echo_pair):
        caller, callee = echo_pair
        fut = services.kernel.spawn(
            caller.runtime.invoke(callee.loid, "Slow", 500.0)
        )
        # Let the request leave but not complete.
        services.kernel.run(until=1.0)
        assert caller.runtime._timeout_handles
        caller.runtime.fail_pending("deactivating")
        assert caller.runtime._timeout_handles == {}
        _drain(services)
        assert caller.runtime.stats.timeouts == 0
        # The teardown surfaces as DeliveryFailure, or -- because the
        # invoke retry loop treats it as a stale binding and there is no
        # Binding Agent to refresh from -- as BindingNotFound.
        with pytest.raises((errors.DeliveryFailure, errors.BindingNotFound)):
            fut.result()

    def test_genuine_timeout_still_fires_and_cleans_up(self, services):
        caller = start_object(services, EchoImpl("caller"), host=1)
        binding = _black_hole_binding(services)
        caller.runtime.seed_binding(binding)
        with pytest.raises(errors.LegionError) as excinfo:
            run_call(services, caller, binding.loid, "Ping", timeout=50.0)
        # The timeout surfaces directly, or -- after refresh attempts with
        # no Binding Agent -- as BindingNotFound; either way it was counted
        # and its bookkeeping is gone.
        assert isinstance(
            excinfo.value, (errors.InvocationTimeout, errors.BindingNotFound)
        )
        assert caller.runtime.stats.timeouts >= 1
        assert caller.runtime._timeout_handles == {}
        assert caller.runtime._pending == {}

    def test_late_reply_after_timeout_is_dropped(self, services, echo_pair):
        caller, callee = echo_pair
        fut = services.kernel.spawn(
            caller.runtime.invoke(callee.loid, "Slow", 400.0, timeout=10.0)
        )
        _drain(services)
        assert fut.failed()
        # The reply eventually arrived at the caller and was discarded:
        # no pending entry, no stale timeout handle, exactly one timeout.
        assert caller.runtime._pending == {}
        assert caller.runtime._timeout_handles == {}
        assert caller.runtime.stats.timeouts == 1
