"""Tests for Abstract/Private/Fixed flags and composite dispatch."""

import pytest

from repro import errors
from repro.core.class_types import ClassFlavor
from repro.core.composite import CompositeImpl
from repro.core.object_base import LegionObjectImpl, legion_method


class TestClassFlavor:
    def test_regular_allows_everything(self):
        flavor = ClassFlavor.REGULAR
        flavor.check_create("X")
        flavor.check_derive("X")
        flavor.check_inherit_from("X")

    def test_abstract_blocks_create_only(self):
        flavor = ClassFlavor.ABSTRACT
        with pytest.raises(errors.AbstractClassError):
            flavor.check_create("X")
        flavor.check_derive("X")
        flavor.check_inherit_from("X")

    def test_private_blocks_derive_only(self):
        flavor = ClassFlavor.PRIVATE
        flavor.check_create("X")
        with pytest.raises(errors.PrivateClassError):
            flavor.check_derive("X")

    def test_fixed_blocks_inherit_only(self):
        flavor = ClassFlavor.FIXED
        flavor.check_create("X")
        with pytest.raises(errors.FixedClassError):
            flavor.check_inherit_from("X")

    def test_combined_flags(self):
        flavor = ClassFlavor.ABSTRACT | ClassFlavor.FIXED
        with pytest.raises(errors.AbstractClassError):
            flavor.check_create("X")
        with pytest.raises(errors.FixedClassError):
            flavor.check_inherit_from("X")
        flavor.check_derive("X")

    def test_describe(self):
        assert ClassFlavor.REGULAR.describe() == "Regular"
        assert (ClassFlavor.ABSTRACT | ClassFlavor.FIXED).describe() == "Abstract+Fixed"


class PartA(LegionObjectImpl):
    def __init__(self):
        self.a_state = 1

    def persistent_attributes(self):
        return ["a_state"]

    @legion_method("string Who()")
    def who(self):
        return "A"

    @legion_method("string OnlyA()")
    def only_a(self):
        return "onlyA"


class PartB(LegionObjectImpl):
    def __init__(self):
        self.b_state = 2

    def persistent_attributes(self):
        return ["b_state"]

    @legion_method("string Who()")
    def who(self):
        return "B"

    @legion_method("string OnlyB()")
    def only_b(self):
        return "onlyB"


class TestComposite:
    def test_needs_parts(self):
        with pytest.raises(ValueError):
            CompositeImpl([])

    def test_chain_order_resolves_overrides(self):
        composite = CompositeImpl([PartA(), PartB()])
        export = composite.find_export("Who", 0)
        assert export.fn(composite) == "A"
        reversed_composite = CompositeImpl([PartB(), PartA()])
        assert reversed_composite.find_export("Who", 0).fn(reversed_composite) == "B"

    def test_union_of_methods(self):
        composite = CompositeImpl([PartA(), PartB()])
        assert composite.find_export("OnlyA", 0).fn(composite) == "onlyA"
        assert composite.find_export("OnlyB", 0).fn(composite) == "onlyB"
        iface = composite.get_interface()
        assert iface.has_method("OnlyA") and iface.has_method("OnlyB")

    def test_missing_method_none(self):
        composite = CompositeImpl([PartA()])
        assert composite.find_export("Nope", 0) is None

    def test_state_roundtrip_preserves_every_part(self):
        source = CompositeImpl([PartA(), PartB()])
        source.parts[0].a_state = 42
        source.parts[1].b_state = 99
        blob = source.save_state()
        target = CompositeImpl([PartA(), PartB()])
        target.restore_state(blob)
        assert target.parts[0].a_state == 42
        assert target.parts[1].b_state == 99

    def test_primary_part_policy_governs(self):
        from repro.security.mayi import DenyAll
        from repro.security.environment import CallEnvironment
        from repro.naming.loid import LOID

        gated = PartA()
        gated.mayi_policy = DenyAll()
        composite = CompositeImpl([gated, PartB()])
        env = CallEnvironment.originating(LOID.for_instance(1, 1))
        assert not composite.may_i("Who", env)
