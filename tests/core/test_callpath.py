"""Call-path compilation: recompile triggers and pipeline equivalence.

Pins the contract of :mod:`repro.core.callpath`:

* the zero-middleware configuration compiles to the flat fast path, and
  each enabled feature shows up in the compiled key's stage list;
* assigning ``services.tracer`` / ``services.flow`` bumps the config
  epoch and the next call (dispatch) recompiles lazily;
* ``enable_batching`` recompiles its runtime eagerly -- it is a
  runtime-local change the services epoch cannot see;
* the compiled fast path is *behaviourally identical* to the general
  retry loop: same values, same counters, same wire messages, same
  kernel events -- including a first attempt that fails on the wire and
  resumes inside the loop (the ``injected`` handoff).
"""

from __future__ import annotations

from repro.experiments.common import uniform_sites
from repro.flow.config import FlowConfig
from repro.naming.binding import Binding
from repro.net.address import ObjectAddress
from repro.system.legion import LegionSystem
from repro.workloads.apps import CounterImpl


def build_system(flow=None, seed=21):
    system = LegionSystem.build(
        uniform_sites(2, hosts_per_site=2), seed=seed, flow=flow
    )
    cls = system.create_class("Counter", factory=CounterImpl)
    instance = system.create_instance(cls.loid)
    return system, instance.loid


def server_of(system, loid):
    """The live ObjectServer behind ``loid`` (via its registered endpoint)."""
    binding = system.console.runtime.lookup_binding(loid)
    element = binding.address.elements[0]
    return system.network._endpoints[element].handler.__self__


# ------------------------------------------------------------- compile keys


def test_plain_config_compiles_flat_pipeline():
    system, loid = build_system()
    runtime = system.console.runtime
    assert runtime._plain_path
    assert runtime._invoke_key.stages() == ()
    assert system.console._dispatch_key.plain
    assert system.console._request_path == system.console._dispatch_plain
    assert system.call(loid, "Ping") == "pong"


def test_flow_config_at_build_compiles_flow_stages():
    system, loid = build_system(flow=FlowConfig(capacity=64, credit_window=8))
    runtime = system.console.runtime
    assert not runtime._plain_path
    assert runtime._invoke_key.stages() == ("credits", "flow")
    # Default admit_kinds (None) throttles every component kind, so the
    # console compiled to the admission intake.
    assert system.console._dispatch_key.admission
    assert system.console._request_path == system.console.admission.arrive
    assert system.call(loid, "Ping") == "pong"


# -------------------------------------------------------- recompile triggers


def test_tracer_assignment_recompiles_lazily():
    system, loid = build_system()
    runtime = system.console.runtime
    epoch = system.services.callpath_epoch
    system.enable_tracing()
    assert system.services.callpath_epoch > epoch
    # Nothing recompiled yet: the stamp goes stale, the next call pays
    # one integer compare and rebuilds.
    assert runtime._callpath_epoch != system.services.callpath_epoch
    assert system.call(loid, "Ping") == "pong"
    assert runtime._invoke_key.traced
    assert not runtime._plain_path
    # The *receiving* server recompiled when the traced request arrived.
    server = server_of(system, loid)
    assert server._dispatch_key.traced
    assert server._request_path == server._dispatch_request

    system.disable_tracing()
    assert system.call(loid, "Ping") == "pong"
    assert runtime._plain_path
    assert server._request_path == server._dispatch_plain


def test_flow_assignment_recompiles_dispatch():
    system, loid = build_system()
    epoch = system.services.callpath_epoch
    system.services.flow = FlowConfig(batch_window=0.5)
    assert system.services.callpath_epoch > epoch
    assert system.call(loid, "Ping") == "pong"
    # No admission controller exists on a server built before the config
    # landed, but batched payloads may now arrive: the flow intake.
    server = server_of(system, loid)
    assert server._dispatch_key.flow
    assert server._request_path == server._dispatch_flow


def test_enable_batching_recompiles_eagerly():
    system, _loid = build_system(flow=FlowConfig(batch_window=0.5))
    runtime = system.console.runtime
    assert not runtime._invoke_key.batching
    epoch = system.services.callpath_epoch
    assert runtime.enable_batching("Ping")
    assert runtime._invoke_key.batching
    assert "batching" in runtime._invoke_key.stages()
    # Runtime-local: no epoch traffic, the pipeline rebuilt in place.
    assert system.services.callpath_epoch == epoch


# ------------------------------------------------- fast path == general path


def _drive(force_general: bool, stale_first_attempt: bool = False):
    """One seeded workload; returns every observable the paths could skew.

    ``force_general`` pins the compiled flag so the same calls run
    through ``_invoke_general``/``_invoke_loop`` instead of the flat
    fast path (the epoch is untouched, so the pin sticks).
    ``stale_first_attempt`` poisons the warm cache with a dead address,
    so the first attempt fails on the wire and the fast path has to
    resume inside the loop via the ``injected`` handoff.
    """
    system, loid = build_system()
    runtime = system.console.runtime
    system.call(loid, "Ping")  # warm the binding cache
    if stale_first_attempt:
        dead = system.network.allocate_element(host=1)
        runtime.cache.insert(Binding(loid, ObjectAddress.single(dead)))
    if force_general:
        runtime._plain_path = False
    values = [system.call(loid, "Increment", 2) for _ in range(5)]
    values.append(system.call(loid, "Get"))
    stats = runtime.stats
    return (
        values,
        (stats.invocations, stats.attempts, stats.requests_sent,
         stats.replies_received, stats.refreshes, stats.stale_detected),
        system.network.stats.messages_sent,
        system.kernel.now,
        system.kernel.events_executed,
    )


def test_fast_path_identical_to_general_path():
    assert _drive(force_general=False) == _drive(force_general=True)


def test_failed_first_attempt_resumes_identically():
    assert _drive(force_general=False, stale_first_attempt=True) == _drive(
        force_general=True, stale_first_attempt=True
    )
