"""Tests for the logical table (Fig. 16) and the relation graph (Fig. 2)."""

import pytest

from repro.errors import ObjectModelError, UnknownObject
from repro.core.relations import RelationGraph, RelationKind
from repro.core.table import LogicalTable, TableRow
from repro.naming.loid import LOID
from repro.net.address import ObjectAddress, ObjectAddressElement


def loid(class_id, seq=0):
    return LOID(class_id, seq)


def address(host=1):
    return ObjectAddress.single(ObjectAddressElement.sim(host, 1024))


class TestLogicalTable:
    def make_row(self, seq=1, **kwargs):
        return TableRow(loid=loid(10, seq), **kwargs)

    def test_add_get_find(self):
        table = LogicalTable()
        row = self.make_row()
        table.add(row)
        assert table.get(row.loid) is row
        assert table.find(loid(10, 99)) is None
        with pytest.raises(UnknownObject):
            table.get(loid(10, 99))

    def test_duplicate_add_rejected(self):
        table = LogicalTable()
        table.add(self.make_row())
        with pytest.raises(UnknownObject):
            table.add(self.make_row())

    def test_deleted_row_can_be_replaced(self):
        table = LogicalTable()
        table.add(self.make_row())
        table.mark_deleted(loid(10, 1))
        table.add(self.make_row())  # LOID reuse after deletion is allowed

    def test_mark_deleted_clears_location_fields(self):
        table = LogicalTable()
        row = self.make_row(object_address=address(), current_magistrates=[loid(4, 1)])
        table.add(row)
        table.mark_deleted(row.loid)
        assert row.deleted
        assert row.object_address is None
        assert row.current_magistrates == []
        assert row.loid not in table  # membership excludes deleted rows

    def test_magistrate_list_updates(self):
        table = LogicalTable()
        row = self.make_row()
        table.add(row)
        table.add_magistrate(row.loid, loid(4, 1))
        table.add_magistrate(row.loid, loid(4, 1))  # idempotent
        assert row.current_magistrates == [loid(4, 1)]
        table.remove_magistrate(row.loid, loid(4, 1))
        table.remove_magistrate(row.loid, loid(4, 1))  # idempotent
        assert row.current_magistrates == []

    def test_instance_subclass_partition(self):
        table = LogicalTable()
        table.add(self.make_row(1))
        table.add(TableRow(loid=loid(11, 0), is_subclass=True))
        assert len(table.instances()) == 1
        assert len(table.subclasses()) == 1

    def test_candidate_restriction(self):
        unrestricted = self.make_row(1)
        assert unrestricted.magistrate_allowed(loid(4, 9))
        restricted = TableRow(loid=loid(10, 2), candidate_magistrates=[loid(4, 1)])
        assert restricted.magistrate_allowed(loid(4, 1))
        assert not restricted.magistrate_allowed(loid(4, 2))

    def test_active_rows(self):
        table = LogicalTable()
        table.add(self.make_row(1, object_address=address()))
        table.add(self.make_row(2))
        assert len(table.active_rows()) == 1


class TestRelationGraph:
    def test_is_a_exactly_one_class(self):
        graph = RelationGraph()
        graph.record_is_a(loid(10, 1), loid(10))
        with pytest.raises(ObjectModelError):
            graph.record_is_a(loid(10, 1), loid(11))
        assert graph.class_of(loid(10, 1)) == loid(10)
        assert graph.instances_of(loid(10)) == [loid(10, 1)]

    def test_kind_of_exactly_one_superclass(self):
        graph = RelationGraph()
        graph.record_kind_of(loid(11), loid(10))
        with pytest.raises(ObjectModelError):
            graph.record_kind_of(loid(11), loid(12))
        assert graph.superclass_of(loid(11)) == loid(10)
        assert graph.subclasses_of(loid(10)) == [loid(11)]

    def test_inherits_from_many_allowed(self):
        graph = RelationGraph()
        graph.record_inherits_from(loid(13), loid(10))
        graph.record_inherits_from(loid(13), loid(11))
        graph.record_inherits_from(loid(13), loid(11))  # idempotent
        assert sorted(graph.bases_of(loid(13))) == [loid(10), loid(11)]

    def test_inherits_from_self_rejected(self):
        graph = RelationGraph()
        with pytest.raises(ObjectModelError):
            graph.record_inherits_from(loid(13), loid(13))

    def test_inheritance_cycle_rejected(self):
        graph = RelationGraph()
        graph.record_inherits_from(loid(11), loid(10))
        graph.record_inherits_from(loid(12), loid(11))
        with pytest.raises(ObjectModelError):
            graph.record_inherits_from(loid(10), loid(12))

    def test_ancestry_chain(self):
        graph = RelationGraph()
        graph.record_kind_of(loid(11), loid(10))
        graph.record_kind_of(loid(12), loid(11))
        assert graph.ancestry(loid(12)) == [loid(12), loid(11), loid(10)]
        assert graph.is_derived_from(loid(12), loid(10))
        assert not graph.is_derived_from(loid(10), loid(12))

    def test_all_bases_transitive(self):
        graph = RelationGraph()
        graph.record_inherits_from(loid(12), loid(11))
        graph.record_inherits_from(loid(11), loid(10))
        assert graph.all_bases(loid(12)) == {loid(11), loid(10)}

    def test_sinks(self):
        graph = RelationGraph()
        graph.record_kind_of(loid(11), loid(10))
        graph.record_is_a(loid(11, 1), loid(11))
        assert graph.sinks() == [loid(10)]

    def test_forget_removes_node(self):
        graph = RelationGraph()
        graph.record_is_a(loid(10, 1), loid(10))
        graph.forget(loid(10, 1))
        assert loid(10, 1) not in graph
        assert graph.instances_of(loid(10)) == []

    def test_edge_counts_by_kind(self):
        graph = RelationGraph()
        graph.record_kind_of(loid(11), loid(10))
        graph.record_is_a(loid(11, 1), loid(11))
        graph.record_inherits_from(loid(11), loid(12))
        assert graph.edge_count() == 3
        assert graph.edge_count(RelationKind.IS_A) == 1
        assert graph.edge_count(RelationKind.KIND_OF) == 1
        assert graph.edge_count(RelationKind.INHERITS_FROM) == 1
