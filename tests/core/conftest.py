"""Fixtures for core-package tests: bare object servers on a raw network."""

from __future__ import annotations

import itertools

import pytest

from repro.core.object_base import LegionObjectImpl, legion_method
from repro.core.server import ObjectServer
from repro.naming.loid import LOID
from repro.simkernel.kernel import Timeout

_seq = itertools.count(1)


class EchoImpl(LegionObjectImpl):
    """Test object: echo, add, fail, slow (generator) methods."""

    def __init__(self, tag: str = "echo") -> None:
        self.tag = tag
        self.calls = 0

    def persistent_attributes(self):
        return ["tag", "calls"]

    @legion_method("string Echo(string)")
    def echo(self, text: str) -> str:
        self.calls += 1
        return f"{self.tag}:{text}"

    @legion_method("int Add(int, int)")
    def add(self, a: int, b: int) -> int:
        return a + b

    @legion_method("Fail()")
    def fail(self) -> None:
        raise ValueError("intentional")

    @legion_method("float Slow(float)")
    def slow(self, delay: float):
        yield Timeout(delay)
        return self.services.kernel.now

    @legion_method("string WhoCalls()")
    def who_calls(self, *, ctx=None) -> str:
        return str(ctx.env.calling_agent)


def start_object(services, impl=None, host=1, seq=None):
    """Register an implementation at a fresh endpoint; returns the server."""
    loid = LOID.for_instance(
        90, seq if seq is not None else next(_seq), services.secret
    )
    return ObjectServer(services, loid, impl or EchoImpl(), host=host)


@pytest.fixture
def echo_pair(services):
    """Two live objects (caller, callee) with seeded bindings."""
    caller = start_object(services, EchoImpl("caller"), host=1)
    callee = start_object(services, EchoImpl("callee"), host=2)
    caller.runtime.seed_binding(callee.binding())
    callee.runtime.seed_binding(caller.binding())
    return caller, callee


def run_call(services, caller, target_loid, method, *args, **kwargs):
    """Spawn an invoke and drive the kernel to completion."""
    fut = services.kernel.spawn(
        caller.runtime.invoke(target_loid, method, *args, **kwargs)
    )
    return services.kernel.run_until_complete(fut)
