"""Class-object behaviour against a live system (sections 2.1, 3.7)."""

import pytest

from repro import errors
from repro.naming.binding import Binding


class TestCreate:
    def test_create_returns_working_binding(self, legion):
        system, cls = legion
        binding = system.call(cls.loid, "Create", {})
        assert isinstance(binding, Binding)
        assert system.call(binding.loid, "Increment", 3) == 3

    def test_instance_loids_carry_class_id(self, legion):
        system, cls = legion
        binding = system.call(cls.loid, "Create", {})
        assert binding.loid.class_id == cls.loid.class_id
        assert not binding.loid.is_class

    def test_create_without_factory_rejected(self, legion):
        system, _cls = legion
        bare = system.create_class("NoImplClass")
        with pytest.raises(errors.ObjectModelError):
            system.call(bare.loid, "Create", {})

    def test_create_with_init_hints(self, legion):
        system, cls = legion
        binding = system.call(cls.loid, "Create", {"init": {"start": 100}})
        assert system.call(binding.loid, "Get") == 100

    def test_magistrate_hint_respected(self, legion):
        system, cls = legion
        magistrate = system.magistrates[system.sites[1].name].loid
        binding = system.call(cls.loid, "Create", {"magistrate": magistrate})
        row = system.call(cls.loid, "GetRow", binding.loid)
        assert row.current_magistrates == [magistrate]

    def test_bad_magistrate_hint_rejected(self, legion):
        system, cls = legion
        # Restrict candidates, then hint an outsider.
        restricted = system.create_class(
            "Restricted",
            instance_factory="app.Counter",
            candidate_magistrates=[system.magistrates[system.sites[0].name].loid],
        )
        outsider = system.magistrates[system.sites[1].name].loid
        with pytest.raises(errors.SchedulingError):
            system.call(restricted.loid, "Create", {"magistrate": outsider})


class TestGetBinding:
    def test_active_object_resolves_from_table(self, legion):
        system, cls = legion
        binding = system.call(cls.loid, "Create", {})
        again = system.call(cls.loid, "GetBinding", binding.loid)
        assert again.address == binding.address

    def test_unknown_object_rejected(self, legion):
        system, cls = legion
        from repro.naming.loid import LOID

        ghost = LOID.for_instance(cls.loid.class_id, 999999, system.services.secret)
        with pytest.raises(errors.UnknownObject):
            system.call(cls.loid, "GetBinding", ghost)

    def test_deleted_object_reports_deletion(self, legion):
        system, cls = legion
        binding = system.call(cls.loid, "Create", {})
        system.call(cls.loid, "Delete", binding.loid)
        with pytest.raises(errors.ObjectDeleted):
            system.call(cls.loid, "GetBinding", binding.loid)

    def test_inert_object_activated_on_get_binding(self, legion):
        system, cls = legion
        binding = system.call(cls.loid, "Create", {})
        system.call(binding.loid, "Increment", 7)
        row = system.call(cls.loid, "GetRow", binding.loid)
        system.call(row.current_magistrates[0], "Deactivate", binding.loid)
        fresh = system.call(cls.loid, "GetBinding", binding.loid)
        assert fresh.address != binding.address or True  # address may differ
        assert system.call(binding.loid, "Get") == 7  # state survived


class TestDelete:
    def test_delete_is_idempotent(self, legion):
        system, cls = legion
        binding = system.call(cls.loid, "Create", {})
        system.call(cls.loid, "Delete", binding.loid)
        system.call(cls.loid, "Delete", binding.loid)

    def test_delete_removes_active_process(self, legion):
        system, cls = legion
        binding = system.call(cls.loid, "Create", {})
        system.call(cls.loid, "Delete", binding.loid)
        with pytest.raises(errors.LegionError):
            system.call(binding.loid, "Ping")

    def test_delete_never_created_rejected(self, legion):
        system, cls = legion
        from repro.naming.loid import LOID

        ghost = LOID.for_instance(cls.loid.class_id, 888888, system.services.secret)
        with pytest.raises(errors.UnknownObject):
            system.call(cls.loid, "Delete", ghost)


class TestReflectiveHooks:
    def test_set_scheduling_agent_field(self, legion):
        system, cls = legion
        binding = system.call(cls.loid, "Create", {})
        agent_loid = system.agents[system.sites[0].name].loid
        system.call(cls.loid, "SetSchedulingAgent", binding.loid, agent_loid)
        row = system.call(cls.loid, "GetRow", binding.loid)
        assert row.scheduling_agent == agent_loid

    def test_set_candidate_magistrates_field(self, legion):
        system, cls = legion
        binding = system.call(cls.loid, "Create", {})
        only = [system.magistrates[system.sites[0].name].loid]
        system.call(cls.loid, "SetCandidateMagistrates", binding.loid, only)
        row = system.call(cls.loid, "GetRow", binding.loid)
        assert row.candidate_magistrates == only


class TestMetaclass:
    def test_class_ids_unique_and_monotone(self, legion):
        system, _cls = legion
        legion_class = system.core.legion_class
        a = legion_class.allocate_class_id(system.core.loid("LegionObject"), "A")
        b = legion_class.allocate_class_id(system.core.loid("LegionObject"), "B")
        assert b == a + 1
        assert legion_class.class_names[a] == "A"

    def test_responsibility_pairs_recorded_on_derive(self, legion):
        system, cls = legion
        sub = system.call(cls.loid, "Derive", "RespSub", {})
        legion_class = system.core.legion_class
        assert legion_class.responsible_for[sub.loid.class_id] == cls.loid

    def test_locate_responsible_for_instances_is_field_surgery(self, legion):
        system, cls = legion
        binding = system.call(cls.loid, "Create", {})
        legion_class_loid = system.core.loid("LegionClass")
        responsible = system.call(
            legion_class_loid, "LocateResponsible", binding.loid
        )
        assert responsible.identity == cls.loid.identity

    def test_locate_responsible_for_core_is_self(self, legion):
        system, _cls = legion
        legion_class_loid = system.core.loid("LegionClass")
        responsible = system.call(
            legion_class_loid, "LocateResponsible", system.core.loid("LegionHost")
        )
        assert responsible == legion_class_loid

    def test_locate_unknown_class_rejected(self, legion):
        system, _cls = legion
        from repro.naming.loid import LOID

        ghost = LOID.for_class(999999, system.services.secret)
        with pytest.raises(errors.UnknownObject):
            system.call(system.core.loid("LegionClass"), "LocateResponsible", ghost)

    def test_get_core_binding(self, legion):
        system, _cls = legion
        binding = system.call(
            system.core.loid("LegionClass"),
            "GetCoreBinding",
            system.core.loid("LegionMagistrate"),
        )
        assert binding.loid == system.core.loid("LegionMagistrate")
