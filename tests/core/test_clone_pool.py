"""Clone-pool mechanics: round-robin normalization, epochs, RetireClone.

The regression pinned here: ``_clone_rr`` was never re-bounded when the
clone list shrank, so after retirements the modulo restart skewed which
survivor soaked up the next burst (and the index silently pointed past
the pool).  ``_normalize_clone_rr`` now runs on every membership change.
"""

import pytest

from repro.errors import UnknownObject
from repro.system.legion import LegionSystem, SiteSpec
from repro.workloads.apps import CounterImpl


def _build(seed=5):
    system = LegionSystem.build([SiteSpec("east", hosts=3)], seed=seed)
    cls = system.create_class("Hot", factory=CounterImpl)
    return system, cls


def _impl_of(system, loid):
    """The live ClassObjectImpl behind a class object's LOID."""
    for server in system.host_servers.values():
        entry = server.impl.processes.find(loid)
        if entry is not None and not entry.crashed:
            return entry.server.impl
    raise AssertionError(f"{loid} is not running on any host")


class TestCloneRoundRobin:
    def test_rr_index_is_rebounded_when_the_pool_shrinks(self):
        system, cls = _build()
        clones = [system.call(cls.loid, "Clone") for _ in range(3)]
        impl = _impl_of(system, cls.loid)
        # Advance the round-robin index to the last pool slot.
        while impl._clone_rr != 2:
            system.create_instance(cls.loid)
        system.call(cls.loid, "RetireClone", clones[2].loid)
        system.call(cls.loid, "RetireClone", clones[1].loid)
        # Regression: the index must be re-bounded into the shrunken pool,
        # not left dangling past it.
        assert len(impl.clones) == 1
        assert 0 <= impl._clone_rr < len(impl.clones)
        # Delegation still works and lands on the one survivor.
        assert system.create_instance(cls.loid) is not None

    def test_delegation_spreads_creates_over_the_pool(self):
        system, cls = _build()
        system.call(cls.loid, "Clone")
        system.call(cls.loid, "Clone")
        impl = _impl_of(system, cls.loid)
        before = impl._clone_rr
        system.create_instance(cls.loid)
        system.create_instance(cls.loid)
        # Two delegated Creates move the index twice (mod pool size).
        assert impl._clone_rr == (before + 2) % len(impl.clones)


class TestCloneEpoch:
    def test_epoch_bumps_on_spawn_and_retire(self):
        system, cls = _build()
        assert system.call(cls.loid, "CloneEpoch") == 0
        clone = system.call(cls.loid, "Clone")
        after_spawn = system.call(cls.loid, "CloneEpoch")
        assert after_spawn > 0
        system.call(cls.loid, "RetireClone", clone.loid)
        assert system.call(cls.loid, "CloneEpoch") > after_spawn

    def test_get_clone_pool_lists_parent_first(self):
        system, cls = _build()
        clone = system.call(cls.loid, "Clone")
        epoch, pool = system.call(cls.loid, "GetClonePool")
        assert epoch == system.call(cls.loid, "CloneEpoch")
        assert [b.loid for b in pool] == [cls.loid, clone.loid]


class TestRetireClone:
    def test_retiring_a_non_clone_raises_unknown_object(self):
        system, cls = _build()
        instance = system.create_instance(cls.loid)
        with pytest.raises(UnknownObject):
            system.call(cls.loid, "RetireClone", instance.loid)

    def test_retire_reconciles_the_opr_and_stragglers_resurrect(self):
        system, cls = _build()
        clone = system.call(cls.loid, "Clone")
        assert system.call(cls.loid, "RetireClone", clone.loid) is True
        assert system.call(cls.loid, "CloneCount") == 0
        # Retired means Inert, not gone: no host runs it...
        for server in system.host_servers.values():
            entry = server.impl.processes.find(clone.loid)
            assert entry is None or entry.crashed
        # ...but a straggler reference reactivates it from the OPR,
        # without it rejoining the routing pool.
        assert system.call(clone.loid, "CloneEpoch") == 0
        assert system.call(cls.loid, "CloneCount") == 0

    def test_magistrate_deactivation_drops_the_clone_from_the_pool(self):
        system, cls = _build()
        clone = system.call(cls.loid, "Clone")
        row = system.call(cls.loid, "GetRow", clone.loid)
        system.call(row.current_magistrates[0], "Deactivate", clone.loid)
        # NoteDeactivated reached the parent: the pool stopped routing.
        assert system.call(cls.loid, "CloneCount") == 0
