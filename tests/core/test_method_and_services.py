"""Unit tests for invocation envelopes and the services substrate."""

import pytest

from repro import errors
from repro.core.context import ImplRegistry
from repro.core.method import (
    InvocationContext,
    MethodInvocation,
    MethodResult,
)
from repro.naming.loid import LOID
from repro.net.message import Message, MessageKind
from repro.security.environment import CallEnvironment


def loid(n=1):
    return LOID.for_instance(20, n)


class TestMethodResult:
    def test_success_unwrap(self):
        assert MethodResult.success(42).unwrap() == 42
        assert MethodResult.success().unwrap() is None

    def test_known_error_types_reconstruct(self):
        cases = [
            (errors.MethodNotFound("m"), errors.MethodNotFound),
            (errors.SecurityDenied("s"), errors.SecurityDenied),
            (errors.RequestRefused("r"), errors.RequestRefused),
            (errors.ObjectDeleted("d"), errors.ObjectDeleted),
            (errors.NoCapacity("c"), errors.NoCapacity),
            (errors.AbstractClassError("a"), errors.AbstractClassError),
            (errors.SchedulingError("x"), errors.SchedulingError),
            (errors.ObjectModelError("o"), errors.ObjectModelError),
        ]
        for original, expected_type in cases:
            result = MethodResult.failure(original)
            assert not result.ok
            with pytest.raises(expected_type):
                result.unwrap()

    def test_unknown_error_becomes_invocation_failed(self):
        result = MethodResult.failure(ZeroDivisionError("1/0"))
        with pytest.raises(errors.InvocationFailed) as excinfo:
            result.unwrap()
        assert excinfo.value.remote_type == "ZeroDivisionError"
        assert "1/0" in str(excinfo.value)


class TestInvocation:
    def test_arity(self):
        env = CallEnvironment.originating(loid())
        inv = MethodInvocation(target=loid(2), method="F", args=(1, 2), env=env)
        assert inv.arity == 2

    def test_context_nested_env(self):
        env = CallEnvironment.originating(loid(1))
        ctx = InvocationContext(env=env, target=loid(2), method="F")
        nested = ctx.nested_env(loid(2))
        assert nested.responsible_agent == loid(1)
        assert nested.calling_agent == loid(2)


class TestMessages:
    def element(self, host=1, port=1024):
        from repro.net.address import ObjectAddressElement

        return ObjectAddressElement.sim(host, port)

    def test_request_reply_correlation(self):
        request = Message.request(self.element(1), self.element(2), "payload")
        reply = request.reply_with("answer")
        assert reply.kind is MessageKind.REPLY
        assert reply.correlation_id == request.correlation_id
        assert reply.source == request.destination
        assert reply.destination == request.source

    def test_failure_notice(self):
        request = Message.request(self.element(1), self.element(2), "p")
        notice = request.failure_notice("gone")
        assert notice.kind is MessageKind.DELIVERY_FAILURE
        assert notice.correlation_id == request.correlation_id
        assert notice.destination == request.source

    def test_distinct_correlation_ids(self):
        a = Message.request(self.element(1), self.element(2), "x")
        b = Message.request(self.element(1), self.element(2), "y")
        assert a.correlation_id != b.correlation_id

    def test_event_has_no_reply_expectation(self):
        event = Message.event(self.element(1), self.element(2), ("gossip",))
        assert event.kind is MessageKind.EVENT


class TestImplRegistry:
    def test_register_create(self):
        registry = ImplRegistry()
        registry.register("thing", lambda x=1: ("made", x))
        assert registry.create("thing") == ("made", 1)
        assert registry.create("thing", x=5) == ("made", 5)
        assert "thing" in registry
        assert registry.get("thing") is not None
        assert registry.get("missing") is None

    def test_duplicate_needs_replace(self):
        registry = ImplRegistry()
        registry.register("thing", lambda: 1)
        with pytest.raises(errors.BootstrapError):
            registry.register("thing", lambda: 2)
        registry.register("thing", lambda: 2, replace=True)
        assert registry.create("thing") == 2

    def test_unknown_create_rejected(self):
        with pytest.raises(errors.BootstrapError):
            ImplRegistry().create("ghost")

    def test_names_sorted(self):
        registry = ImplRegistry()
        registry.register("b", lambda: 1)
        registry.register("a", lambda: 1)
        assert registry.names() == ["a", "b"]


class TestSystemServices:
    def test_well_known_requires_bootstrap(self, services):
        with pytest.raises(errors.BootstrapError):
            services.well_known_loid("LegionClass")
        services.well_known["LegionClass"] = loid(9)
        assert services.well_known_loid("LegionClass") == loid(9)


class TestSMMPNodes:
    def test_activations_carry_processor_numbers(self, services):
        from repro.hosts.host_types import UnixSMMPHostImpl
        from repro.workloads.apps import CounterImpl
        from tests.core.conftest import start_object
        from tests.hosts.test_hosts import make_opr

        host = start_object(services, UnixSMMPHostImpl(host_id=9, processors=4), host=9)
        services.impls.register("app.counter", CounterImpl, replace=True)
        addresses = [
            host.impl.activate(make_opr(services, seq=i + 1)) for i in range(5)
        ]
        nodes = [a.primary().node for a in addresses]
        assert nodes == [0, 1, 2, 3, 0]  # round-robin over processors
