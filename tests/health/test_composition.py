"""Composition: the governor against chaos, overload, and replication.

E17 proves the headline claim at experiment scale; these tests pin the
cross-subsystem contracts at unit scale:

* governed overload + seeded chaos still settles every request
  (``requests_sent == replies + timeouts + delivery_failures + cancelled
  + shed``) and keeps the three shed ledgers reconciled;
* a Failed-band pause sheds non-critical traffic with the first-class
  ``"paused"`` reason while the critical allowlist keeps serving;
* the replication coupling: under-replication evidence degrades the
  band, the band accelerates a real ReplicaRepairService, and repair
  calms the evidence back down.
"""

from __future__ import annotations

from repro.core.runtime import RetryPolicy
from repro.errors import LegionError, Overloaded
from repro.faults.driver import ChaosDriver, eligible_hosts
from repro.faults.log import FaultLog
from repro.faults.plan import FaultKind, FaultPlan
from repro.faults.recovery import RecoverySweeper
from repro.flow import FlowConfig
from repro.health import Band, BandRules, GovernorConfig, enable_governor
from repro.metrics.counters import ComponentKind
from repro.replication import ReplicaRepairService, enable_replication
from repro.replication.store import ReplicatedStoreImpl
from repro.simkernel.futures import gather
from repro.simkernel.kernel import Timeout
from repro.system.legion import LegionSystem, SiteSpec
from repro.workloads.apps import CounterImpl, SerialServiceImpl

SERVICE_TIME = 2.0
FLOW = FlowConfig(
    capacity=1,
    queue_limit=10,
    service_estimate=SERVICE_TIME,
    admit_kinds=frozenset({ComponentKind.APPLICATION}),
    credit_window=8,
)
RETRY = RetryPolicy(
    max_attempts=4,
    base_backoff=5.0,
    max_backoff=50.0,
    retry_partitions=True,
    retry_resolution_failures=True,
    retry_tokens=40.0,
    retry_token_refill=0.5,
)


def settles(runtime) -> bool:
    s = runtime.stats
    settled = (
        s.replies_received
        + s.timeouts
        + s.delivery_failures
        + s.cancelled
        + s.shed
    )
    return s.requests_sent == settled and not runtime._pending


def all_runtimes(system, clients):
    servers = (
        list(system.host_servers.values())
        + list(system.magistrates.values())
        + list(system.agents.values())
        + list(clients)
    )
    for host_server in system.host_servers.values():
        for entry in host_server.impl.processes.running():
            servers.append(entry.server)
    return [s.runtime for s in servers]


def one_step_each(ledger) -> bool:
    for record in ledger.records:
        a = Band[record.from_band.upper()]
        b = Band[record.to_band.upper()]
        if abs(b - a) != 1:
            return False
    return True


class TestGovernedChaosOverload:
    def test_settlement_and_triple_entry_survive_the_composition(self):
        system = LegionSystem.build(
            [SiteSpec("main", hosts=3)], seed=47, flow=FLOW
        )
        log = FaultLog()
        system.services.fault_log = log
        site0 = system.sites[0].name
        protected = system.host_servers[system.site_hosts[site0][0]].loid
        cls = system.create_class(
            "Serial",
            factory=lambda: SerialServiceImpl(service_time=SERVICE_TIME),
            magistrate=system.magistrates[site0].loid,
            host=protected,
        )
        instance = system.create_instance(cls.loid)
        row = system.call(cls.loid, "GetRow", instance.loid)
        system.call(row.current_magistrates[0], "Checkpoint", instance.loid)
        fodder_cls = system.create_class(
            "Fodder",
            factory=CounterImpl,
            magistrate=system.magistrates[site0].loid,
            host=protected,
        )
        fodder = [system.create_instance(fodder_cls.loid) for _ in range(3)]
        for binding in fodder:
            row = system.call(fodder_cls.loid, "GetRow", binding.loid)
            system.call(row.current_magistrates[0], "Checkpoint", binding.loid)

        clients = [system.new_client(f"comp-{i}") for i in range(2)]
        for client in clients:
            client.runtime.retry_policy = RETRY

        sweeper = RecoverySweeper(system, interval=100.0)
        sweeper.start()
        governor = enable_governor(
            system,
            GovernorConfig(
                degrade_dwell=20.0,
                recover_dwell=60.0,
                tick=10.0,
                window=40.0,
                critical=frozenset({str(instance.loid)}),
            ),
        )
        governor.track(*clients)
        governor.attach(sweeper=sweeper)

        plan = FaultPlan.generate(
            system.services.rng.stream("comp-faults"),
            horizon=150.0,
            intensity=30.0,
            hosts=eligible_hosts(system),
            sites=[s.name for s in system.sites],
            objects=[str(b.loid) for b in fodder],
            mix={FaultKind.HOST_CRASH: 0.4, FaultKind.OBJECT_CRASH: 0.6},
        )
        driver = ChaosDriver(system, plan, log)
        system.kernel.schedule(100.0, driver.start)

        def one_call(client):
            try:
                yield from client.runtime.invoke(
                    instance.loid, "Work", timeout=40.0
                )
            except LegionError:
                pass

        def storm(client):
            # Open loop far past capacity during the storm window (the
            # serial service clears 0.5/ms; 2 clients at 1/ms each offer
            # 4x), then a calm trickle so the band can walk back.
            calls = []
            for _ in range(80):
                calls.append(system.kernel.spawn(one_call(client)))
                yield Timeout(1.0)
            for _ in range(10):
                calls.append(system.kernel.spawn(one_call(client)))
                yield Timeout(20.0)
            for fut in calls:
                yield fut

        futures = [system.kernel.spawn(storm(c)) for c in clients]
        system.kernel.run_until_complete(
            gather(futures), max_events=10_000_000
        )
        sweeper.stop()
        governor.stop_loop()
        system.kernel.run()

        # The composed run overloaded for real (evidence of composition).
        assert any(c.runtime.stats.shed > 0 for c in clients)
        assert log.injected  # chaos really fired
        # Settlement identity holds on every runtime in the system.
        for runtime in all_runtimes(system, clients):
            assert settles(runtime)
        # Triple entry: metrics == faultlog == wire on the final snapshot.
        governor.poll()
        evidence = governor.last_evidence
        assert evidence.consistent, evidence.ledgers()
        # The band timeline never skipped a band and its ledger verifies.
        assert one_step_each(governor.ledger)
        assert governor.ledger.verify() is None
        governor.stop()

    def test_failed_pause_sheds_non_critical_but_serves_critical(self):
        system = LegionSystem.build(
            [SiteSpec("main", hosts=2)], seed=53, flow=FLOW
        )
        cls = system.create_class("Counter", factory=CounterImpl)
        critical = system.create_instance(cls.loid)
        bystander = system.create_instance(cls.loid)
        client = system.new_client("pause-client")
        client.runtime.retry_policy = RetryPolicy(max_attempts=1)

        governor = enable_governor(
            system,
            GovernorConfig(critical=frozenset({str(critical.loid)})),
            start=False,
        )
        governor.machine.band = Band.FAILED
        governor._apply(governor.config.policies[Band.FAILED])

        outcomes = {}

        def call(name, loid):
            try:
                yield from client.runtime.invoke(loid, "Increment", 1, timeout=30.0)
                outcomes[name] = "ok"
            except Overloaded as exc:
                reason = "paused" if "paused" in str(exc) else str(exc)
                outcomes[name] = f"shed:{reason}"
            except LegionError as exc:
                outcomes[name] = type(exc).__name__

        system.kernel.spawn(call("critical", critical.loid))
        system.kernel.spawn(call("bystander", bystander.loid))
        system.kernel.run()

        assert outcomes["critical"] == "ok"
        assert outcomes["bystander"] == "shed:paused"
        # One step back up unpauses the bystander.
        governor.machine.band = Band.COMPROMISED
        governor._apply(governor.config.policies[Band.COMPROMISED])
        system.kernel.spawn(call("bystander", bystander.loid))
        system.kernel.run()
        assert outcomes["bystander"] == "ok"
        governor.stop()


class TestGovernorReplication:
    def test_under_replication_degrades_and_repair_recovers(self):
        system = LegionSystem.build(
            [SiteSpec(f"site{i}", hosts=2) for i in range(3)], seed=59
        )
        system.services.fault_log = FaultLog()
        enable_replication(system)
        cls = system.create_class("GeoStore", factory=ReplicatedStoreImpl)
        groups = [
            system.call(cls.loid, "CreateReplicated", 3, "first", i)
            for i in range(2)
        ]
        system.kernel.run()

        repair = ReplicaRepairService(system, interval=200.0)
        governor = enable_governor(
            system,
            GovernorConfig(
                rules=BandRules(under_replicated=1.0),
                degrade_dwell=10.0,
                recover_dwell=40.0,
                tick=10.0,
                window=40.0,
            ),
            start=False,
        )
        governor.attach(repair=repair)

        # Crash one replica of each group: 2 under-replicated groups > 1.
        for binding in groups:
            element = binding.address.elements[0]
            system.host_servers[element.host].impl.crash_object(
                binding.loid, "test crash"
            )
            system.call(cls.loid, "ReportDeadReplica", binding.loid, element)
        system.kernel.run()

        governor.poll()
        assert governor.band is Band.STRAINED
        assert repair.interval == 100.0  # 200 * Strained's 0.5

        # Let the accelerated repair service rebuild the groups.
        repair.start()

        def idle(span=300.0):
            yield Timeout(span)

        system.kernel.run_until_complete(system.kernel.spawn(idle(1000.0)))
        repair.stop()
        system.kernel.run()
        assert governor.collector.snapshot().under_replicated == 0

        # Calm evidence walks the band back after the dwell.
        recovered = False
        for _ in range(12):
            system.kernel.run_until_complete(system.kernel.spawn(idle()))
            if governor.poll() is not None and governor.band is Band.STABLE:
                recovered = True
                break
        assert recovered
        assert repair.interval == 200.0  # baseline restored at Stable
        assert governor.ledger.verify() is None
        assert [r.direction for r in governor.ledger.records] == [
            "degrade",
            "recover",
        ]
        governor.stop()
