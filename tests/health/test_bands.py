"""The five-band machine: threshold ladder, one-step moves, dwell, hysteresis."""

from __future__ import annotations

from types import SimpleNamespace

import pytest

from repro.errors import LegionError
from repro.health.bands import SIGNALS, Band, BandMachine, BandRules


def ev(**signals):
    """Evidence with every signal zero except the given overrides."""
    base = {attr: 0 for _name, attr in SIGNALS}
    base.update(signals)
    return SimpleNamespace(**base)


CALM = ev()
RULES = BandRules()  # shed_rate base 0.3, ladder (1, 3, 9, 27)


class TestBand:
    def test_ordered_by_severity(self):
        assert (
            Band.STABLE
            < Band.STRAINED
            < Band.ERODING
            < Band.COMPROMISED
            < Band.FAILED
        )

    def test_labels_and_descriptions(self):
        for band in Band:
            assert band.label == band.name.lower()
            assert band.description


class TestBandRules:
    def test_ladder_must_have_one_rung_per_degraded_band(self):
        with pytest.raises(LegionError):
            BandRules(ladder=(1.0, 2.0, 3.0))

    def test_ladder_must_strictly_increase(self):
        with pytest.raises(LegionError):
            BandRules(ladder=(1.0, 3.0, 3.0, 27.0))

    def test_recover_fraction_bounds(self):
        with pytest.raises(LegionError):
            BandRules(recover_fraction=0.0)
        with pytest.raises(LegionError):
            BandRules(recover_fraction=1.5)
        BandRules(recover_fraction=1.0)  # no hysteresis gap is legal

    def test_thresholds_must_be_positive(self):
        with pytest.raises(LegionError):
            BandRules(shed_rate=0.0)

    def test_severity_climbs_the_ladder(self):
        # Base shed threshold 0.3; rungs at 0.3, 0.9, 2.7, 8.1.
        assert RULES.severity(ev(shed_rate=0.2)) is Band.STABLE
        assert RULES.severity(ev(shed_rate=0.4)) is Band.STRAINED
        assert RULES.severity(ev(shed_rate=1.0)) is Band.ERODING
        assert RULES.severity(ev(shed_rate=3.0)) is Band.COMPROMISED
        assert RULES.severity(ev(shed_rate=10.0)) is Band.FAILED

    def test_breach_is_strictly_above_threshold(self):
        assert RULES.breaches(ev(loss_backlog=2)) == []
        assert RULES.breaches(ev(loss_backlog=3)) == [("loss_backlog", 1)]

    def test_severity_is_worst_signal(self):
        evidence = ev(shed_rate=0.4, queue_depth=100)  # sev 1 and sev 2
        assert RULES.severity(evidence) is Band.ERODING

    def test_scale_tightens_thresholds(self):
        # 0.2 < 0.3 but above the half-scaled threshold 0.15.
        evidence = ev(shed_rate=0.2)
        assert RULES.severity(evidence) is Band.STABLE
        assert RULES.severity(evidence, scale=0.5) is Band.STRAINED

    def test_reasons_are_sorted_signal_names(self):
        evidence = ev(shed_rate=10.0, loss_backlog=100, queue_depth=1)
        assert RULES.reasons_at(evidence, Band.FAILED) == [
            "loss_backlog",
            "shed_rate",
        ]


HOT = ev(shed_rate=100.0)  # indicates Failed outright


class TestBandMachine:
    def test_dwells_must_be_non_negative(self):
        with pytest.raises(LegionError):
            BandMachine(degrade_dwell=-1.0)

    def test_calm_evidence_holds_stable(self):
        machine = BandMachine()
        assert machine.step(CALM, 10.0) is None
        assert machine.band is Band.STABLE

    def test_first_degrade_from_stable_is_immediate(self):
        machine = BandMachine(degrade_dwell=40.0)
        transition = machine.step(ev(shed_rate=0.4), 0.0)
        assert transition is not None
        assert (transition.from_band, transition.to_band) == (
            Band.STABLE,
            Band.STRAINED,
        )
        assert transition.direction == "degrade"
        assert transition.reason == "shed_rate"

    def test_catastrophic_evidence_never_skips_a_band(self):
        machine = BandMachine(degrade_dwell=40.0)
        bands = [machine.band]
        for tick in range(50):
            transition = machine.step(HOT, float(tick * 10))
            if transition is not None:
                assert transition.to_band == transition.from_band + 1
                bands.append(transition.to_band)
        assert bands == list(Band)
        assert machine.band is Band.FAILED

    def test_degrade_dwell_gates_further_falls(self):
        machine = BandMachine(degrade_dwell=40.0)
        machine.step(HOT, 0.0)  # Stable -> Strained
        assert machine.step(HOT, 10.0) is None  # only 10 ms in band
        assert machine.step(HOT, 39.0) is None
        transition = machine.step(HOT, 40.0)
        assert transition is not None and transition.to_band is Band.ERODING

    def test_recovery_needs_both_streak_and_time_in_band(self):
        machine = BandMachine(degrade_dwell=0.0, recover_dwell=100.0)
        machine.step(HOT, 0.0)
        # Calm from t=10: the streak matures at t=110.
        assert machine.step(CALM, 10.0) is None
        assert machine.step(CALM, 109.0) is None
        transition = machine.step(CALM, 110.0)
        assert transition is not None
        assert transition.direction == "recover"
        assert transition.reason == "calm"
        assert machine.band is Band.STABLE

    def test_hot_tick_resets_the_calm_streak(self):
        machine = BandMachine(degrade_dwell=0.0, recover_dwell=100.0)
        machine.step(HOT, 0.0)
        machine.step(CALM, 10.0)
        machine.step(HOT, 90.0)  # Strained-level is not > Strained: no move,
        assert machine.band is Band.ERODING or machine.band is Band.STRAINED
        # ...but the streak restarted: calm at 100 only matures at 200.
        machine.step(CALM, 100.0)
        assert machine.step(CALM, 199.0) is None
        assert machine.step(CALM, 200.0) is not None

    def test_hysteresis_gap_holds_the_band(self):
        # Above the recovery threshold (0.15) yet below the degrade
        # threshold (0.3): neither direction moves -- no oscillation.
        machine = BandMachine(degrade_dwell=0.0, recover_dwell=50.0)
        machine.step(HOT, 0.0)
        lukewarm = ev(shed_rate=0.2)
        for tick in range(1, 30):
            assert machine.step(lukewarm, float(tick * 10)) is None
        assert machine.band is Band.STRAINED

    def test_recovery_climbs_one_band_per_dwell(self):
        machine = BandMachine(degrade_dwell=0.0, recover_dwell=50.0)
        for tick in range(4):
            machine.step(HOT, float(tick))
        assert machine.band is Band.FAILED
        recovered = []
        for tick in range(100):
            transition = machine.step(CALM, 10.0 + tick * 10)
            if transition is not None:
                assert transition.to_band == transition.from_band - 1
                recovered.append(transition.to_band)
        assert recovered == [
            Band.COMPROMISED,
            Band.ERODING,
            Band.STRAINED,
            Band.STABLE,
        ]
