"""The hash-chained transition ledger and its verification CLI."""

from __future__ import annotations

import json

from repro.health.bands import Band, Transition
from repro.health.evidence import HealthEvidence
from repro.health.ledger import GENESIS, HealthLedger, canonical, record_hash
from repro.health.verify import main, verify_file


def evidence(time: float, sheds: int = 0) -> HealthEvidence:
    return HealthEvidence(
        time=time,
        window=40.0,
        shed_rate=sheds / 40.0,
        retry_denied_rate=0.0,
        loss_backlog=1,
        under_replicated=0,
        queue_depth=3,
        queue_depth_p90=2,
        shed_metrics=sheds,
        shed_faultlog=sheds,
        shed_wire=sheds,
        retry_denied_total=0,
        faults_lost=1,
        faults_recovered=0,
    )


def degrade(time: float, from_band: Band) -> Transition:
    return Transition(
        time=time,
        from_band=from_band,
        to_band=Band(from_band + 1),
        direction="degrade",
        reason="shed_rate",
        severity=Band(from_band + 1),
    )


def chain(n: int = 3) -> HealthLedger:
    ledger = HealthLedger()
    for i in range(n):
        ledger.append(degrade(10.0 * (i + 1), Band(i)), evidence(10.0 * (i + 1), i))
    return ledger


class TestChain:
    def test_records_chain_from_genesis(self):
        ledger = chain(3)
        assert len(ledger) == 3
        assert ledger.records[0].prev_hash == GENESIS
        for prev, record in zip(ledger.records, ledger.records[1:], strict=False):
            assert record.prev_hash == prev.hash
            assert record.seq == prev.seq + 1
        assert ledger.head == ledger.records[-1].hash

    def test_hash_covers_the_canonical_body(self):
        ledger = chain(1)
        record = ledger.records[0]
        assert record.hash == record_hash(record.body())
        assert "hash" not in record.body()

    def test_verify_passes_intact_chain(self):
        assert chain(4).verify() is None
        assert HealthLedger().verify() is None  # empty is trivially intact

    def test_serialization_is_deterministic(self):
        lines_a = [canonical(r) for r in chain(4).to_json()]
        lines_b = [canonical(r) for r in chain(4).to_json()]
        assert lines_a == lines_b
        for line in lines_a:
            assert json.dumps(
                json.loads(line), sort_keys=True, separators=(",", ":")
            ) == line


class TestTamperEvidence:
    def test_edited_field_is_detected(self):
        for field, value in [
            ("time", 999.0),
            ("to_band", "failed"),
            ("direction", "recover"),
            ("reason", "calm"),
            ("severity", "stable"),
        ]:
            records = chain(3).to_json()
            records[1][field] = value
            error = HealthLedger.verify_records(records)
            assert error is not None and "record 1" in error

    def test_edited_evidence_is_detected(self):
        records = chain(3).to_json()
        records[2]["evidence"]["shed_metrics"] = 0
        error = HealthLedger.verify_records(records)
        assert error is not None and "record 2" in error

    def test_dropped_record_breaks_the_chain(self):
        records = chain(3).to_json()
        del records[1]
        assert HealthLedger.verify_records(records) is not None

    def test_reordered_records_break_the_chain(self):
        records = chain(3).to_json()
        records[0], records[1] = records[1], records[0]
        assert HealthLedger.verify_records(records) is not None

    def test_truncated_head_is_detected(self):
        # Dropping the oldest records re-anchors nothing: seq 1 at index 0.
        records = chain(3).to_json()[1:]
        error = HealthLedger.verify_records(records)
        assert error is not None and "seq" in error

    def test_rewritten_hash_still_fails_downstream(self):
        # Recomputing record 1's hash after an edit makes record 1 look
        # self-consistent -- but record 2's prev_hash now disagrees.
        records = chain(3).to_json()
        records[1]["reason"] = "edited"
        body = {k: v for k, v in records[1].items() if k != "hash"}
        records[1]["hash"] = record_hash(body)
        error = HealthLedger.verify_records(records)
        assert error is not None and "record 2" in error


class TestFileRoundTrip:
    def test_write_load_verify(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        ledger = chain(4)
        ledger.write(path)
        records = HealthLedger.load_records(path)
        assert records == ledger.to_json()
        assert HealthLedger.verify_records(records) is None
        assert verify_file(str(path)) is None

    def test_cli_ok_exit_zero(self, tmp_path, capsys):
        path = tmp_path / "ledger.jsonl"
        chain(4).write(path)
        assert main([str(path)]) == 0
        out = capsys.readouterr().out
        assert "OK" in out and "4 records" in out

    def test_cli_tampered_exit_nonzero(self, tmp_path, capsys):
        path = tmp_path / "ledger.jsonl"
        chain(3).write(path)
        lines = path.read_text().splitlines()
        record = json.loads(lines[1])
        record["reason"] = "edited"
        lines[1] = canonical(record)
        path.write_text("\n".join(lines) + "\n")
        assert main([str(path)]) == 1
        assert "TAMPERED" in capsys.readouterr().out

    def test_cli_unreadable_file_exit_nonzero(self, tmp_path, capsys):
        assert main([str(tmp_path / "missing.jsonl")]) == 1
        assert "unreadable" in capsys.readouterr().out

    def test_cli_no_args_exit_two(self, capsys):
        assert main([]) == 2
        capsys.readouterr()
