"""EvidenceCollector: reconciled snapshots off the system's own ledgers."""

from __future__ import annotations

from repro.core.runtime import RetryPolicy
from repro.faults.log import FaultLog
from repro.flow import FlowConfig
from repro.health import EvidenceCollector
from repro.metrics.counters import ComponentKind
from repro.replication import enable_replication
from repro.replication.store import ReplicatedStoreImpl
from repro.simkernel.kernel import Timeout
from repro.system.legion import LegionSystem, SiteSpec
from repro.workloads.apps import SerialServiceImpl

NO_RETRY = RetryPolicy(max_attempts=1)

#: Serial service, no queue: every concurrent extra arrival sheds.
FLOW = FlowConfig(
    capacity=1,
    queue_limit=0,
    service_estimate=5.0,
    admit_kinds=frozenset({ComponentKind.APPLICATION}),
)


def build(seed=21, flow=FLOW, fault_log=True):
    system = LegionSystem.build([SiteSpec("main", hosts=2)], seed=seed, flow=flow)
    if fault_log:
        system.services.fault_log = FaultLog()
    cls = system.create_class(
        "Serial", factory=lambda: SerialServiceImpl(service_time=5.0)
    )
    instance = system.create_instance(cls.loid)
    client = system.new_client("evidence-client")
    client.runtime.retry_policy = NO_RETRY
    return system, instance, client


def shed_some(system, instance, client, n=3):
    """Fire ``n`` concurrent calls at the serial no-queue service: one is
    served, ``n - 1`` shed.  Returns the shed count."""

    def call():
        try:
            yield from client.runtime.invoke(instance.loid, "Work", timeout=60.0)
        except Exception:
            pass

    futures = [system.kernel.spawn(call()) for _ in range(n)]
    system.kernel.run()
    del futures
    return n - 1


class TestTripleEntry:
    def test_tracked_caller_reconciles_three_ledgers(self):
        system, instance, client = build()
        collector = EvidenceCollector(system)
        collector.track(client)
        sheds = shed_some(system, instance, client)
        snap = collector.snapshot()
        assert snap.shed_metrics == sheds
        assert snap.shed_faultlog == sheds
        assert snap.shed_wire == sheds
        assert snap.consistent
        assert snap.ledgers() == {
            "metrics": sheds,
            "faultlog": sheds,
            "wire": sheds,
        }

    def test_untracked_caller_breaks_the_wire_column(self):
        system, instance, client = build()
        collector = EvidenceCollector(system)  # client never tracked
        sheds = shed_some(system, instance, client)
        snap = collector.snapshot()
        assert snap.shed_metrics == sheds
        assert snap.shed_wire == 0
        assert not snap.consistent

    def test_without_faultlog_the_column_mirrors_metrics(self):
        system, instance, client = build(fault_log=False)
        collector = EvidenceCollector(system)
        collector.track(client)
        sheds = shed_some(system, instance, client)
        snap = collector.snapshot()
        assert snap.shed_faultlog == snap.shed_metrics == sheds
        assert snap.consistent
        assert snap.loss_backlog == 0


class TestSignals:
    def test_first_snapshot_has_zero_window_and_rates(self):
        system, _instance, _client = build()
        snap = EvidenceCollector(system).snapshot()
        assert snap.window == 0.0
        assert snap.shed_rate == 0.0
        assert snap.retry_denied_rate == 0.0

    def test_shed_rate_diffs_across_the_window(self):
        system, instance, client = build()
        collector = EvidenceCollector(system, window=1000.0)
        collector.track(client)
        collector.snapshot()  # anchor sample at t0
        t0 = system.kernel.now
        sheds = shed_some(system, instance, client)
        snap = collector.snapshot()
        span = system.kernel.now - t0
        assert snap.window == span > 0
        assert snap.shed_rate == sheds / span

    def test_old_samples_slide_out_of_the_window(self):
        system, instance, client = build()
        collector = EvidenceCollector(system, window=50.0)
        collector.track(client)
        sheds = shed_some(system, instance, client)
        collector.snapshot()
        # Idle past the window: the hot sample ages out, the rate decays
        # to zero even though the cumulative total still carries the sheds.
        def idle():
            yield Timeout(20.0)

        for _ in range(8):
            fut = system.kernel.spawn(idle())
            system.kernel.run_until_complete(fut)
            collector.snapshot()
        snap = collector.snapshot()
        assert snap.shed_metrics == sheds
        assert snap.shed_rate == 0.0

    def test_loss_backlog_is_lost_minus_recovered(self):
        system, _instance, _client = build()
        collector = EvidenceCollector(system)
        log = system.services.fault_log
        now = system.kernel.now
        log.inject(now, "object-crash", "1.9.100")
        log.inject(now, "object-lost", "1.9.101")
        assert collector.snapshot().loss_backlog == 2
        log.observe(now, "object-recovered", "1.9.100")
        snap = collector.snapshot()
        assert snap.loss_backlog == 1
        assert snap.faults_lost == 2
        assert snap.faults_recovered == 1

    def test_queue_depth_sees_midflight_backlog(self):
        system, instance, client = build(
            flow=FlowConfig(
                capacity=1,
                queue_limit=8,
                service_estimate=5.0,
                admit_kinds=frozenset({ComponentKind.APPLICATION}),
            )
        )
        collector = EvidenceCollector(system)
        depths = []

        def call():
            try:
                yield from client.runtime.invoke(
                    instance.loid, "Work", timeout=120.0
                )
            except Exception:
                pass

        def probe():
            yield Timeout(8.0)  # arrivals have landed, service still busy
            depths.append(collector.snapshot().queue_depth)

        for _ in range(5):
            system.kernel.spawn(call())
        system.kernel.spawn(probe())
        system.kernel.run()
        assert depths and depths[0] >= 3  # 1 in service + >= 2 queued
        assert collector.snapshot().queue_depth == 0  # drained

    def test_under_replicated_reads_the_global_index(self):
        system = LegionSystem.build(
            [SiteSpec(f"site{i}", hosts=2) for i in range(3)], seed=5
        )
        enable_replication(system)
        cls = system.create_class("GeoStore", factory=ReplicatedStoreImpl)
        binding = system.call(cls.loid, "CreateReplicated", 3, "first", 1)
        system.kernel.run()  # drain placement gossip
        collector = EvidenceCollector(system)
        assert collector.snapshot().under_replicated == 0
        element = binding.address.elements[0]
        system.host_servers[element.host].impl.crash_object(
            binding.loid, "test crash"
        )
        system.call(cls.loid, "ReportDeadReplica", binding.loid, element)
        system.kernel.run()  # drain the removal gossip
        assert collector.snapshot().under_replicated == 1

    def test_without_replication_under_replicated_is_zero(self):
        system, _instance, _client = build()
        assert EvidenceCollector(system).snapshot().under_replicated == 0


class TestJsonForm:
    def test_to_json_round_trips_all_fields(self):
        system, instance, client = build()
        collector = EvidenceCollector(system)
        collector.track(client)
        shed_some(system, instance, client)
        snap = collector.snapshot()
        doc = snap.to_json()
        assert doc["shed_metrics"] == snap.shed_metrics
        assert doc["time"] == round(snap.time, 6)
        assert set(doc) == {
            "time", "window", "shed_rate", "retry_denied_rate",
            "loss_backlog", "under_replicated", "queue_depth",
            "queue_depth_p90", "shed_metrics", "shed_faultlog",
            "shed_wire", "retry_denied_total", "faults_lost",
            "faults_recovered",
        }
