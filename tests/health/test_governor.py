"""Governor policy coupling: bands turn real knobs, stop() restores them."""

from __future__ import annotations

from dataclasses import replace

from repro.autoscale import AutoscaleConfig
from repro.core.runtime import RetryPolicy
from repro.faults.log import FaultLog
from repro.faults.recovery import RecoverySweeper
from repro.flow import FlowConfig
from repro.health import (
    DEFAULT_POLICIES,
    Band,
    BandPolicy,
    Governor,
    GovernorConfig,
    enable_governor,
)
from repro.metrics.counters import ComponentKind
from repro.system.legion import LegionSystem, SiteSpec
from repro.workloads.apps import CounterImpl

RETRY = RetryPolicy(max_attempts=4, retry_tokens=60.0, retry_token_refill=0.5)
FLOW = FlowConfig(
    capacity=1,
    queue_limit=16,
    service_estimate=2.0,
    admit_kinds=frozenset({ComponentKind.APPLICATION}),
)


def build(seed=31):
    system = LegionSystem.build([SiteSpec("main", hosts=2)], seed=seed, flow=FLOW)
    system.services.fault_log = FaultLog()
    cls = system.create_class("Counter", factory=CounterImpl)
    instance = system.create_instance(cls.loid)
    client = system.new_client("gov-client")
    client.runtime.retry_policy = RETRY
    return system, instance, client


def app_servers(governor):
    return governor.collector.admitted_servers()


def force(governor, band: Band) -> None:
    """Apply one band's policy directly (tests drive _apply, not traffic)."""
    governor.machine.band = band
    governor._apply(governor.config.policies[band])


class FakeAutoscaler:
    def __init__(self, config):
        self.config = config


class FakeRepair:
    interval = 400.0
    priority = -1
    pacing = 2.0


class TestPolicyLadder:
    def test_defaults_cover_every_band_and_tighten_monotonically(self):
        assert set(DEFAULT_POLICIES) == set(Band)
        scales = [DEFAULT_POLICIES[b].queue_scale for b in Band]
        assert scales == sorted(scales, reverse=True)
        refills = [DEFAULT_POLICIES[b].refill_scale for b in Band]
        assert refills == sorted(refills, reverse=True)
        assert DEFAULT_POLICIES[Band.STABLE] == BandPolicy()
        only_failed = [b for b in Band if DEFAULT_POLICIES[b].pause_non_critical]
        assert only_failed == [Band.FAILED]


class TestFlowCoupling:
    def test_queue_limit_scales_per_band_from_baseline(self):
        system, _instance, _client = build()
        governor = Governor(system)
        force(governor, Band.ERODING)  # queue_scale 0.5
        for server in app_servers(governor):
            assert server.admission.config.queue_limit == 8
        # Straight to Stable: back to the captured baseline, not 8 * 1.0
        # of a compounded base.
        force(governor, Band.STABLE)
        for server in app_servers(governor):
            assert server.admission.config is FLOW or (
                server.admission.config.queue_limit == 16
            )

    def test_scaling_is_idempotent_not_compounded(self):
        system, _instance, _client = build()
        governor = Governor(system)
        for _ in range(5):
            force(governor, Band.COMPROMISED)  # queue_scale 0.25
        for server in app_servers(governor):
            assert server.admission.config.queue_limit == 4

    def test_retry_refill_scales_on_tracked_runtimes(self):
        system, _instance, client = build()
        governor = Governor(system)
        governor.track(client)
        force(governor, Band.ERODING)  # refill_scale 0.25
        assert client.runtime.retry_policy.retry_token_refill == 0.125
        force(governor, Band.FAILED)  # refill_scale 0.0
        assert client.runtime.retry_policy.retry_token_refill == 0.0
        force(governor, Band.STABLE)
        assert client.runtime.retry_policy.retry_token_refill == 0.5

    def test_unlimited_retry_runtimes_are_left_alone(self):
        system, _instance, client = build()
        client.runtime.retry_policy = RetryPolicy(max_attempts=3)  # no tokens
        governor = Governor(system)
        governor.track(client)
        force(governor, Band.FAILED)
        assert client.runtime.retry_policy.retry_tokens is None
        assert client.runtime.retry_policy.max_attempts == 3


class TestPause:
    def test_failed_pauses_all_but_the_critical_allowlist(self):
        system, instance, _client = build()
        other_cls = system.create_class("Other", factory=CounterImpl)
        system.create_instance(other_cls.loid)
        config = GovernorConfig(critical=frozenset({str(instance.loid)}))
        governor = Governor(system, config)
        force(governor, Band.FAILED)
        paused = {
            s.component.name: s.admission.paused for s in app_servers(governor)
        }
        assert paused[str(instance.loid)] is False
        others = [v for k, v in paused.items() if k != str(instance.loid)]
        assert others and all(others)

    def test_recovery_unpauses(self):
        system, _instance, _client = build()
        governor = Governor(system)
        force(governor, Band.FAILED)
        assert any(s.admission.paused for s in app_servers(governor))
        force(governor, Band.COMPROMISED)
        assert not any(s.admission.paused for s in app_servers(governor))


class TestControllerCoupling:
    def test_autoscale_floor_rises_capped_by_max_clones(self):
        system, _instance, _client = build()
        governor = Governor(system)
        scaler = FakeAutoscaler(
            AutoscaleConfig(high_water=1.0, low_water=0.1, min_clones=0,
                            max_clones=1)
        )
        governor.attach(autoscaler=scaler)
        force(governor, Band.ERODING)  # min_clones policy 2, capped at 1
        assert scaler.config.min_clones == 1
        force(governor, Band.STABLE)
        assert scaler.config.min_clones == 0

    def test_baseline_floor_above_policy_floor_wins(self):
        system, _instance, _client = build()
        governor = Governor(system)
        scaler = FakeAutoscaler(
            AutoscaleConfig(high_water=1.0, low_water=0.1, min_clones=3,
                            max_clones=4)
        )
        governor.attach(autoscaler=scaler)
        force(governor, Band.STRAINED)  # policy floor 1 < baseline 3
        assert scaler.config.min_clones == 3

    def test_sweeper_and_repair_accelerate_per_band(self):
        system, _instance, _client = build()
        governor = Governor(system)
        sweeper = RecoverySweeper(system, interval=120.0)
        repair = FakeRepair()
        governor.attach(sweeper=sweeper, repair=repair)
        force(governor, Band.COMPROMISED)
        assert sweeper.interval == 15.0  # 120 * 0.125
        assert repair.interval == 50.0  # 400 * 0.125
        assert repair.priority == 1  # -1 + boost 2
        assert repair.pacing == 0.25  # 2 * 0.125
        force(governor, Band.STABLE)
        assert sweeper.interval == 120.0
        assert (repair.interval, repair.priority, repair.pacing) == (
            400.0,
            -1,
            2.0,
        )


class TestLifecycle:
    def test_poll_ledgers_transitions_with_evidence(self):
        system, _instance, client = build()
        governor = Governor(system)
        governor.track(client)
        assert governor.poll() is None  # calm: no transition, no record
        assert governor.band is Band.STABLE
        assert len(governor.ledger) == 0
        assert governor.last_evidence is not None
        assert governor.last_evidence.consistent

    def test_stop_restores_every_baseline(self):
        system, _instance, client = build()
        governor = Governor(system)
        governor.track(client)
        sweeper = RecoverySweeper(system, interval=120.0)
        scaler = FakeAutoscaler(
            AutoscaleConfig(high_water=1.0, low_water=0.1, max_clones=4)
        )
        governor.attach(autoscaler=scaler, sweeper=sweeper)
        force(governor, Band.FAILED)
        governor.stop()
        for server in app_servers(governor):
            assert server.admission.config.queue_limit == 16
            assert server.admission.paused is False
        assert client.runtime.retry_policy == RETRY
        assert scaler.config.min_clones == 0
        assert sweeper.interval == 120.0

    def test_loop_ticks_on_simulated_time(self):
        system, _instance, client = build()
        governor = enable_governor(
            system, GovernorConfig(tick=10.0, window=40.0)
        )
        governor.track(client)
        before = system.kernel.now
        # Run a bounded slice of simulated time; the endless loop keeps
        # the kernel busy, so advance by draining a finite co-process.
        from repro.simkernel.kernel import Timeout

        def slice_():
            yield Timeout(95.0)

        system.kernel.run_until_complete(system.kernel.spawn(slice_()))
        governor.stop()
        assert governor.last_evidence is not None
        assert governor.last_evidence.time > before
        system.kernel.run()  # loop killed: the kernel drains clean

    def test_start_is_idempotent(self):
        system, _instance, _client = build()
        governor = enable_governor(system)
        proc = governor._proc
        governor.start()
        assert governor._proc is proc
        governor.stop()
        assert governor._proc is None

    def test_config_replace_fills_critical_per_run(self):
        base = GovernorConfig()
        filled = replace(base, critical=frozenset({"1.2.3"}))
        assert filled.critical == frozenset({"1.2.3"})
        assert filled.policies is base.policies
