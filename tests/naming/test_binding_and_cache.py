"""Unit tests for Bindings (3.5) and BindingCaches (5.2.1)."""

import pytest

from repro.naming.binding import Binding, NEVER_EXPIRES
from repro.naming.cache import BindingCache
from repro.naming.loid import LOID
from repro.net.address import ObjectAddress, ObjectAddressElement


def make_binding(seq=1, host=1, expires=NEVER_EXPIRES):
    return Binding(
        LOID.for_instance(7, seq),
        ObjectAddress.single(ObjectAddressElement.sim(host, 1024)),
        expires,
    )


class TestBinding:
    def test_never_expires_default(self):
        binding = make_binding()
        assert binding.valid_at(0.0)
        assert binding.valid_at(1e18)

    def test_expiry(self):
        binding = make_binding(expires=10.0)
        assert binding.valid_at(9.999)
        assert not binding.valid_at(10.0)

    def test_refreshed_keeps_loid(self):
        binding = make_binding()
        new_address = ObjectAddress.single(ObjectAddressElement.sim(9, 2048))
        refreshed = binding.refreshed(new_address, 50.0)
        assert refreshed.loid == binding.loid
        assert refreshed.address == new_address
        assert refreshed.expires_at == 50.0


class TestBindingCache:
    def test_miss_then_hit(self):
        cache = BindingCache(capacity=4)
        binding = make_binding()
        assert cache.lookup(binding.loid, 0.0) is None
        cache.insert(binding)
        assert cache.lookup(binding.loid, 0.0) == binding
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_expired_entry_counts_as_miss_and_is_removed(self):
        cache = BindingCache()
        cache.insert(make_binding(expires=5.0))
        assert cache.lookup(make_binding().loid, 6.0) is None
        assert cache.stats.expired == 1
        assert len(cache) == 0

    def test_lru_eviction_order(self):
        cache = BindingCache(capacity=2)
        b1, b2, b3 = make_binding(1), make_binding(2), make_binding(3)
        cache.insert(b1)
        cache.insert(b2)
        cache.lookup(b1.loid, 0.0)  # touch b1: b2 becomes LRU
        cache.insert(b3)
        assert cache.lookup(b1.loid, 0.0) == b1
        assert cache.lookup(b2.loid, 0.0) is None
        assert cache.stats.evictions == 1

    def test_insert_replaces_same_identity(self):
        cache = BindingCache()
        old = make_binding(1, host=1)
        new = make_binding(1, host=9)
        cache.insert(old)
        cache.insert(new)
        assert len(cache) == 1
        assert cache.lookup(old.loid, 0.0) == new

    def test_invalidate_by_loid(self):
        cache = BindingCache()
        binding = make_binding()
        cache.insert(binding)
        assert cache.invalidate(binding.loid)
        assert not cache.invalidate(binding.loid)  # idempotent
        assert cache.stats.invalidations == 1

    def test_invalidate_exact_spares_newer_binding(self):
        cache = BindingCache()
        stale = make_binding(1, host=1)
        fresh = make_binding(1, host=2)
        cache.insert(fresh)
        # A caller holding the stale binding must not clobber the fresh one.
        assert not cache.invalidate_exact(stale)
        assert cache.lookup(fresh.loid, 0.0) == fresh
        assert cache.invalidate_exact(fresh)

    def test_purge_expired(self):
        cache = BindingCache()
        cache.insert(make_binding(1, expires=5.0))
        cache.insert(make_binding(2, expires=50.0))
        assert cache.purge_expired(10.0) == 1
        assert len(cache) == 1

    def test_unbounded_capacity(self):
        cache = BindingCache(capacity=None)
        for i in range(1, 1001):
            cache.insert(make_binding(i))
        assert len(cache) == 1000
        assert cache.stats.evictions == 0

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            BindingCache(capacity=0)

    def test_hit_rate(self):
        cache = BindingCache()
        binding = make_binding()
        cache.insert(binding)
        cache.lookup(binding.loid, 0.0)
        cache.lookup(make_binding(99).loid, 0.0)
        assert cache.stats.hit_rate == 0.5

    def test_stats_reset(self):
        cache = BindingCache()
        cache.insert(make_binding())
        cache.lookup(make_binding().loid, 0.0)
        cache.stats.reset()
        assert cache.stats.lookups == 0
        assert cache.stats.inserts == 0
