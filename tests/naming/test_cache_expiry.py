"""Regression tests for BindingCache TTL honesty and the expiry heap."""

from repro.naming.binding import Binding, NEVER_EXPIRES
from repro.naming.cache import BindingCache
from repro.naming.loid import LOID
from repro.net.address import ObjectAddress, ObjectAddressElement


def make_binding(seq=1, host=1, expires=NEVER_EXPIRES):
    return Binding(
        LOID.for_instance(7, seq),
        ObjectAddress.single(ObjectAddressElement.sim(host, 1024)),
        expires,
    )


class TestContainsRespectsTTL:
    def test_contains_false_after_expiry_observed(self):
        """Regression: ``in`` used to report TTL-expired entries present.

        Once the cache has observed a ``now`` past the entry's expiry, no
        lookup can ever return it again, so membership must be False even
        though the entry may physically still sit in the store.
        """
        cache = BindingCache()
        binding = make_binding(expires=5.0)
        cache.insert(binding)
        assert binding.loid in cache
        # Advance the cache's observed clock past the expiry via a lookup
        # of an unrelated key.
        other = make_binding(seq=2)
        cache.lookup(other.loid, now=10.0)
        assert binding.loid not in cache

    def test_contains_true_while_live(self):
        cache = BindingCache()
        binding = make_binding(expires=5.0)
        cache.insert(binding)
        cache.lookup(binding.loid, now=4.0)
        assert binding.loid in cache

    def test_contains_never_expiring(self):
        cache = BindingCache()
        binding = make_binding()
        cache.insert(binding)
        cache.lookup(binding.loid, now=1e12)
        assert binding.loid in cache

    def test_purge_advances_observed_clock(self):
        cache = BindingCache()
        binding = make_binding(expires=5.0)
        cache.insert(binding)
        cache.purge_expired(now=6.0)
        assert binding.loid not in cache


class TestExpiryHeap:
    def test_purge_drops_only_expired(self):
        cache = BindingCache()
        early = make_binding(seq=1, expires=5.0)
        late = make_binding(seq=2, expires=50.0)
        forever = make_binding(seq=3)
        for b in (early, late, forever):
            cache.insert(b)
        assert cache.purge_expired(now=10.0) == 1
        assert len(cache) == 2
        assert early.loid not in cache
        assert late.loid in cache
        assert forever.loid in cache
        assert cache.stats.expired == 1

    def test_stale_heap_entry_does_not_kill_refreshed_binding(self):
        """A replaced binding's old heap entry must not delete the new one."""
        cache = BindingCache()
        old = make_binding(expires=5.0)
        cache.insert(old)
        fresh = old.refreshed(old.address, expires_at=100.0)
        cache.insert(fresh)
        # The old (expires=5.0) heap entry pops, but the live binding is
        # still valid, so nothing is dropped.
        assert cache.purge_expired(now=10.0) == 0
        assert cache.lookup(fresh.loid, now=10.0) == fresh

    def test_purge_after_invalidate_is_clean(self):
        cache = BindingCache()
        binding = make_binding(expires=5.0)
        cache.insert(binding)
        assert cache.invalidate(binding.loid)
        assert cache.purge_expired(now=10.0) == 0
        assert len(cache) == 0

    def test_never_expiring_entries_stay_out_of_heap(self):
        cache = BindingCache()
        for i in range(10):
            cache.insert(make_binding(seq=i + 1))
        assert cache._expiry == []

    def test_heap_rebuild_under_replacement_churn(self):
        """Replacing the same keys many times must not grow the heap O(churn)."""
        cache = BindingCache()
        for round_ in range(100):
            for i in range(5):
                cache.insert(make_binding(seq=i + 1, expires=float(round_ + 1)))
        assert len(cache._expiry) <= 2 * len(cache._entries) + 64
        # The surviving bindings (expires=100.0) are still purged correctly.
        assert cache.purge_expired(now=100.0) == 5
        assert len(cache) == 0

    def test_clear_empties_heap(self):
        cache = BindingCache()
        cache.insert(make_binding(expires=5.0))
        cache.clear()
        assert cache._expiry == []
        assert cache.purge_expired(now=10.0) == 0
