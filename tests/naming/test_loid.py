"""Unit tests for LOIDs (paper 3.2, Fig. 12)."""

import pytest

from repro.errors import InvalidLOID
from repro.naming.loid import (
    LOID,
    LOIDAllocator,
    PUBLIC_KEY_BITS,
    derive_public_key,
)


class TestLOID:
    def test_field_ranges(self):
        with pytest.raises(InvalidLOID):
            LOID(class_id=1 << 64, class_specific=0)
        with pytest.raises(InvalidLOID):
            LOID(class_id=0, class_specific=1 << 64)
        with pytest.raises(InvalidLOID):
            LOID(class_id=0, class_specific=0, public_key=1 << PUBLIC_KEY_BITS)

    def test_class_convention(self):
        assert LOID(5, 0).is_class
        assert not LOID(5, 1).is_class

    def test_identity_excludes_key(self):
        a = LOID(5, 7, public_key=1)
        b = LOID(5, 7, public_key=2)
        assert a.identity == b.identity
        assert a != b  # full equality includes the key

    def test_class_identity_field_surgery(self):
        instance = LOID.for_instance(9, 4, secret=1)
        assert instance.class_identity() == (9, 0)

    def test_for_class_and_for_instance_keys_verify(self):
        cls = LOID.for_class(9, secret=42)
        inst = LOID.for_instance(9, 1, secret=42)
        assert cls.verify_key(42)
        assert inst.verify_key(42)
        assert not cls.verify_key(43)

    def test_for_instance_rejects_zero_sequence(self):
        with pytest.raises(InvalidLOID):
            LOID.for_instance(9, 0)

    def test_pack_width_is_128_plus_p_bits(self):
        loid = LOID.for_instance(1, 1)
        assert len(loid.pack()) * 8 == 128 + PUBLIC_KEY_BITS

    def test_pack_unpack_roundtrip(self):
        loid = LOID((1 << 64) - 1, (1 << 64) - 1, (1 << PUBLIC_KEY_BITS) - 1)
        assert LOID.unpack(loid.pack()) == loid

    def test_unpack_rejects_wrong_length(self):
        with pytest.raises(InvalidLOID):
            LOID.unpack(b"\x00" * 10)

    def test_ordering_and_hashing(self):
        a = LOID(1, 1)
        b = LOID(1, 2)
        assert a < b
        assert len({a, b, LOID(1, 1)}) == 2

    def test_key_derivation_depends_on_all_inputs(self):
        base = derive_public_key(1, 2, 3)
        assert derive_public_key(9, 2, 3) != base
        assert derive_public_key(1, 9, 3) != base
        assert derive_public_key(1, 2, 9) != base


class TestAllocator:
    def test_sequences_start_at_one(self):
        allocator = LOIDAllocator(class_id=8, secret=0)
        assert allocator.next_instance().class_specific == 1

    def test_unique_and_monotone(self):
        allocator = LOIDAllocator(class_id=8, secret=0)
        loids = [allocator.next_instance() for _ in range(100)]
        assert len({l.identity for l in loids}) == 100
        specifics = [l.class_specific for l in loids]
        assert specifics == sorted(specifics)

    def test_start_below_one_rejected(self):
        with pytest.raises(InvalidLOID):
            LOIDAllocator(class_id=8, start=0)

    def test_iteration_protocol(self):
        allocator = LOIDAllocator(class_id=8)
        it = iter(allocator)
        assert next(it).class_specific == 1
        assert next(it).class_specific == 2
