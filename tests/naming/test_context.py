"""Unit tests for Contexts: string names → LOIDs (paper 4.1)."""

import pytest

from repro.errors import ContextError
from repro.naming.context import Context
from repro.naming.loid import LOID


def loid(n):
    return LOID.for_instance(50, n)


class TestBasicBinding:
    def test_bind_and_lookup(self):
        ctx = Context()
        ctx.bind("alice", loid(1))
        assert ctx.lookup("alice") == loid(1)

    def test_slashes_normalised(self):
        ctx = Context()
        ctx.bind("/a/b/", loid(1))
        assert ctx.lookup("a/b") == loid(1)

    def test_duplicate_bind_rejected(self):
        ctx = Context()
        ctx.bind("x", loid(1))
        with pytest.raises(ContextError):
            ctx.bind("x", loid(2))

    def test_replace(self):
        ctx = Context()
        ctx.bind("x", loid(1))
        ctx.bind("x", loid(2), replace=True)
        assert ctx.lookup("x") == loid(2)

    def test_missing_lookup_raises(self):
        with pytest.raises(ContextError):
            Context().lookup("nope")

    def test_try_lookup_returns_none(self):
        assert Context().try_lookup("nope") is None

    def test_unbind(self):
        ctx = Context()
        ctx.bind("x", loid(1))
        assert ctx.unbind("x") == loid(1)
        with pytest.raises(ContextError):
            ctx.unbind("x")

    def test_empty_name_rejected(self):
        with pytest.raises(ContextError):
            Context().bind("///", loid(1))

    def test_relative_components_rejected(self):
        with pytest.raises(ContextError):
            Context().bind("a/../b", loid(1))


class TestHierarchy:
    def test_subcontext_routing(self):
        root = Context("/")
        home = root.subcontext("home")
        home.bind("alice", loid(1))
        assert root.lookup("home/alice") == loid(1)

    def test_deep_nesting(self):
        root = Context()
        a = root.subcontext("a")
        b = a.subcontext("b")
        b.bind("leaf", loid(5))
        assert root.lookup("a/b/leaf") == loid(5)

    def test_bind_through_mount(self):
        root = Context()
        root.subcontext("site")
        root.bind("site/thing", loid(3))
        assert root.lookup("site/thing") == loid(3)

    def test_mount_name_conflicts(self):
        root = Context()
        root.bind("x", loid(1))
        with pytest.raises(ContextError):
            root.mount("x", Context())
        root.subcontext("y")
        with pytest.raises(ContextError):
            root.bind("y", loid(2))  # 'y' is a sub-context

    def test_list_flattens(self):
        root = Context()
        root.bind("a", loid(1))
        sub = root.subcontext("s")
        sub.bind("b", loid(2))
        assert root.list() == ["a", "s/b"]

    def test_list_with_prefix(self):
        root = Context()
        sub = root.subcontext("s")
        sub.bind("b", loid(2))
        assert root.list("s") == ["s/b"]
        with pytest.raises(ContextError):
            root.list("nothere")

    def test_len_and_contains(self):
        root = Context()
        root.bind("a", loid(1))
        sub = root.subcontext("s")
        sub.bind("b", loid(2))
        assert len(root) == 2
        assert "s/b" in root
        assert "s/c" not in root
