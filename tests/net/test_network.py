"""Unit tests for the network fabric: delivery, staleness, partitions."""

import random

import pytest

from repro.errors import NetworkError
from repro.net.latency import LatencyModel, LinkClass
from repro.net.message import Message, MessageKind
from repro.net.network import Network


@pytest.fixture
def net(kernel):
    latency = LatencyModel()
    latency.assign_host(1, "uva")
    latency.assign_host(2, "uva")
    latency.assign_host(3, "doe")
    return Network(kernel, latency, rng=random.Random(0))


def register_sink(net, host):
    element = net.allocate_element(host)
    inbox = []
    net.register(element, inbox.append)
    return element, inbox


class TestRegistration:
    def test_allocate_gives_fresh_ports(self, net):
        a = net.allocate_element(1)
        b = net.allocate_element(1)
        assert a != b
        assert a.host == b.host == 1

    def test_duplicate_registration_rejected(self, net):
        element, _ = register_sink(net, 1)
        with pytest.raises(NetworkError):
            net.register(element, lambda m: None)

    def test_unregister_is_idempotent(self, net):
        element, _ = register_sink(net, 1)
        net.unregister(element)
        net.unregister(element)
        assert not net.is_registered(element)


class TestDelivery:
    def test_same_site_faster_than_wide_area(self, net, kernel):
        src, _ = register_sink(net, 1)
        lan_dst, lan_inbox = register_sink(net, 2)
        wan_dst, wan_inbox = register_sink(net, 3)
        net.send(Message.request(src, lan_dst, "lan"))
        net.send(Message.request(src, wan_dst, "wan"))
        kernel.run()
        # LAN delivery strictly before WAN delivery in simulated time.
        assert lan_inbox and wan_inbox
        assert net.latency.latency(1, 2) < net.latency.latency(1, 3)

    def test_per_class_accounting(self, net, kernel):
        src, _ = register_sink(net, 1)
        dst, _ = register_sink(net, 3)
        net.send(Message.request(src, dst, "x"))
        kernel.run()
        assert net.stats.by_class[LinkClass.WIDE_AREA] == 1
        assert net.stats.messages_delivered == 1

    def test_stale_destination_bounces_failure(self, net, kernel):
        src_element = net.allocate_element(1)
        src_inbox = []
        net.register(src_element, src_inbox.append)
        ghost = net.allocate_element(2)  # never registered
        net.send(Message.request(src_element, ghost, "hello"))
        kernel.run()
        assert len(src_inbox) == 1
        notice = src_inbox[0]
        assert notice.kind is MessageKind.DELIVERY_FAILURE
        assert notice.correlation_id != 0

    def test_failure_notice_correlates_with_request(self, net, kernel):
        src, inbox = register_sink(net, 1)
        ghost = net.allocate_element(2)
        message = Message.request(src, ghost, "x")
        net.send(message)
        kernel.run()
        assert inbox[0].correlation_id == message.correlation_id

    def test_unregistered_sender_gets_no_notice(self, net, kernel):
        ghost_src = net.allocate_element(1)
        ghost_dst = net.allocate_element(2)
        net.send(Message.request(ghost_src, ghost_dst, "x"))
        kernel.run()  # nothing to deliver anywhere; must not blow up
        assert net.stats.delivery_failures == 1

    def test_reply_to_dead_caller_is_dropped_silently(self, net, kernel):
        src, _ = register_sink(net, 1)
        dst, dst_inbox = register_sink(net, 2)
        request = Message.request(src, dst, "ping")
        net.send(request)
        kernel.run()
        net.unregister(src)
        net.send(dst_inbox[0].reply_with("pong"))
        kernel.run()  # no failure-notice loop
        assert net.stats.delivery_failures == 1


class TestFailureInjection:
    def test_partition_blocks_and_heals(self, net, kernel):
        src, src_inbox = register_sink(net, 1)
        dst, dst_inbox = register_sink(net, 3)
        net.partition("uva", "doe")
        net.send(Message.request(src, dst, "x"))
        kernel.run()
        assert dst_inbox == []
        assert src_inbox[0].kind is MessageKind.DELIVERY_FAILURE
        net.heal("uva", "doe")
        net.send(Message.request(src, dst, "y"))
        kernel.run()
        assert dst_inbox[0].payload == "y"

    def test_partition_does_not_block_same_site(self, net, kernel):
        src, _ = register_sink(net, 1)
        dst, inbox = register_sink(net, 2)
        net.partition("uva", "doe")
        net.send(Message.request(src, dst, "x"))
        kernel.run()
        assert inbox[0].payload == "x"

    def test_drops_are_silent(self, net, kernel):
        src, src_inbox = register_sink(net, 1)
        dst, dst_inbox = register_sink(net, 3)
        net.drop_probability[LinkClass.WIDE_AREA] = 1.0
        net.send(Message.request(src, dst, "x"))
        kernel.run()
        assert dst_inbox == []
        assert src_inbox == []  # silent: only timeouts can detect this
        assert net.stats.drops == 1

    def test_heal_all(self, net):
        net.partition("uva", "doe")
        net.heal_all()
        assert not net._partitioned(1, 3)


class TestLatencyModel:
    def test_classification(self):
        latency = LatencyModel()
        latency.assign_host(1, "a")
        latency.assign_host(2, "a")
        latency.assign_host(3, "b")
        assert latency.classify(1, 1) is LinkClass.SAME_HOST
        assert latency.classify(1, 2) is LinkClass.SAME_SITE
        assert latency.classify(1, 3) is LinkClass.WIDE_AREA
        assert latency.classify(1, 99) is LinkClass.WIDE_AREA  # unassigned

    def test_uniform_model(self):
        latency = LatencyModel.uniform(2.5)
        assert latency.latency(1, 1) == 2.5
        assert latency.latency(1, 99) == 2.5

    def test_jitter_requires_rng(self):
        latency = LatencyModel(jitter_fraction=0.5)
        with pytest.raises(ValueError):
            latency.latency(1, 2)

    def test_jitter_bounded(self):
        latency = LatencyModel(jitter_fraction=0.5, rng=random.Random(1))
        latency.assign_host(1, "a")
        latency.assign_host(2, "a")
        base = latency.base[LinkClass.SAME_SITE]
        for _ in range(100):
            value = latency.latency(1, 2)
            assert base <= value < base * 1.5
