"""Unit tests for Object Addresses and their elements (paper 3.4)."""

import random

import pytest

from repro.errors import AddressError
from repro.net.address import (
    AddressSemantic,
    AddressType,
    ObjectAddress,
    ObjectAddressElement,
)


class TestElement:
    def test_field_ranges_enforced(self):
        with pytest.raises(AddressError):
            ObjectAddressElement(addr_type=1 << 32, host=0, port=0)
        with pytest.raises(AddressError):
            ObjectAddressElement(addr_type=1, host=1 << 32, port=0)
        with pytest.raises(AddressError):
            ObjectAddressElement(addr_type=1, host=0, port=1 << 16)
        with pytest.raises(AddressError):
            ObjectAddressElement(addr_type=1, host=0, port=0, node=1 << 32)

    def test_pack_is_36_bytes(self):
        element = ObjectAddressElement.ip(host=0xC0A80101, port=8080, node=3)
        assert len(element.pack()) == 36  # 32-bit type + 256-bit info

    def test_pack_unpack_roundtrip(self):
        element = ObjectAddressElement.ip(host=0xFFFFFFFF, port=0xFFFF, node=7)
        assert ObjectAddressElement.unpack(element.pack()) == element

    def test_unpack_rejects_wrong_length(self):
        with pytest.raises(AddressError):
            ObjectAddressElement.unpack(b"\x00" * 35)

    def test_unpack_rejects_dirty_reserved_bits(self):
        raw = bytearray(ObjectAddressElement.ip(1, 2).pack())
        raw[-1] = 1  # low-order reserved bit
        with pytest.raises(AddressError):
            ObjectAddressElement.unpack(bytes(raw))

    def test_info_bits_layout(self):
        # host occupies the top 32 bits of the 256-bit info field.
        element = ObjectAddressElement.ip(host=1, port=0, node=0)
        assert element.info_bits() >> (256 - 32) == 1

    def test_sim_constructor_uses_sim_type(self):
        assert ObjectAddressElement.sim(1, 2).addr_type == AddressType.SIM


class TestObjectAddress:
    def elements(self, n):
        return [ObjectAddressElement.sim(host=i + 1, port=1024) for i in range(n)]

    def test_needs_at_least_one_element(self):
        with pytest.raises(AddressError):
            ObjectAddress(elements=())

    def test_k_of_n_validates_k(self):
        with pytest.raises(AddressError):
            ObjectAddress(
                elements=tuple(self.elements(2)),
                semantic=AddressSemantic.K_OF_N,
                k=3,
            )
        with pytest.raises(AddressError):
            ObjectAddress(
                elements=tuple(self.elements(2)),
                semantic=AddressSemantic.K_OF_N,
                k=0,
            )

    def test_single(self):
        element = self.elements(1)[0]
        address = ObjectAddress.single(element)
        assert address.primary() == element
        assert len(address) == 1

    def test_targets_all(self):
        els = self.elements(3)
        address = ObjectAddress.replicated(els, semantic=AddressSemantic.ALL)
        assert address.targets() == tuple(els)

    def test_targets_any_random_needs_rng(self):
        address = ObjectAddress.replicated(self.elements(3))
        with pytest.raises(AddressError):
            address.targets()

    def test_targets_any_random_picks_one(self):
        address = ObjectAddress.replicated(self.elements(3))
        rng = random.Random(0)
        picks = {address.targets(rng)[0] for _ in range(50)}
        assert picks <= set(address.elements)
        assert len(picks) > 1  # actually random

    def test_targets_first_in_order(self):
        els = self.elements(3)
        address = ObjectAddress(elements=tuple(els), semantic=AddressSemantic.FIRST)
        assert address.targets() == tuple(els)

    def test_without_shrinks(self):
        els = self.elements(3)
        address = ObjectAddress.replicated(els, semantic=AddressSemantic.ALL)
        smaller = address.without(els[1])
        assert smaller is not None
        assert len(smaller) == 2
        assert els[1] not in smaller.elements

    def test_without_last_element_returns_none(self):
        els = self.elements(1)
        address = ObjectAddress.single(els[0])
        assert address.without(els[0]) is None

    def test_without_clamps_k(self):
        els = self.elements(3)
        address = ObjectAddress.replicated(
            els, semantic=AddressSemantic.K_OF_N, k=3
        )
        smaller = address.without(els[0])
        assert smaller.k == 2

    def test_pack_unpack_roundtrip_all_semantics(self):
        for semantic, k in [
            (AddressSemantic.ALL, 1),
            (AddressSemantic.ANY_RANDOM, 1),
            (AddressSemantic.FIRST, 1),
            (AddressSemantic.K_OF_N, 2),
        ]:
            address = ObjectAddress(
                elements=tuple(self.elements(3)), semantic=semantic, k=k
            )
            assert ObjectAddress.unpack(address.pack()) == address

    def test_unpack_rejects_garbage(self):
        with pytest.raises(AddressError):
            ObjectAddress.unpack(b"short")
