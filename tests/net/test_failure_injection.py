"""Failure-injection contracts of the network fabric.

Partitions must block *both* directions and be idempotent; per-link-class
drop probabilities must be honored exactly; and the NetStats counters must
reconcile -- every sent message is accounted for as delivered, dropped, or
bounced, with nothing double-counted or lost.
"""

import random

import pytest

from repro.net.latency import LatencyModel, LinkClass
from repro.net.message import Message, MessageKind
from repro.net.network import Network


@pytest.fixture
def net(kernel):
    latency = LatencyModel()
    latency.assign_host(1, "uva")
    latency.assign_host(2, "uva")
    latency.assign_host(3, "doe")
    return Network(kernel, latency, rng=random.Random(0))


def sink(net, host):
    element = net.allocate_element(host)
    inbox = []
    net.register(element, inbox.append)
    return element, inbox


class _ScriptedRng:
    """Deterministic rng stub: hands out a preset sequence of draws."""

    def __init__(self, draws):
        self.draws = list(draws)

    def random(self):
        return self.draws.pop(0)


class TestPartitions:
    def test_partition_blocks_both_directions(self, net, kernel):
        a, a_inbox = sink(net, 1)
        b, b_inbox = sink(net, 3)
        net.partition("uva", "doe")
        net.send(Message.request(a, b, "a->b"))
        net.send(Message.request(b, a, "b->a"))
        kernel.run()
        payloads = [m.payload for m in a_inbox + b_inbox]
        assert "a->b" not in payloads and "b->a" not in payloads
        assert net.stats.partition_blocks == 2
        # Both senders heard about it (the 4.1.4 failure signal).
        assert [m.kind for m in a_inbox] == [MessageKind.DELIVERY_FAILURE]
        assert [m.kind for m in b_inbox] == [MessageKind.DELIVERY_FAILURE]
        assert "partition" in str(a_inbox[0].payload)

    def test_partition_order_does_not_matter(self, net, kernel):
        a, _ = sink(net, 1)
        b, b_inbox = sink(net, 3)
        net.partition("doe", "uva")  # reversed site order
        net.send(Message.request(a, b, "x"))
        kernel.run()
        assert b_inbox == []

    def test_partition_and_heal_are_idempotent(self, net, kernel):
        a, _ = sink(net, 1)
        b, b_inbox = sink(net, 3)
        net.partition("uva", "doe")
        net.partition("uva", "doe")  # duplicate: still ONE partition
        net.heal("uva", "doe")  # one heal undoes it completely
        net.heal("uva", "doe")  # healing the healed is a no-op
        net.send(Message.request(a, b, "through"))
        kernel.run()
        assert [m.payload for m in b_inbox] == ["through"]
        assert net.stats.partition_blocks == 0

    def test_same_site_traffic_ignores_partitions(self, net, kernel):
        a, _ = sink(net, 1)
        peer, peer_inbox = sink(net, 2)
        net.partition("uva", "doe")
        net.send(Message.request(a, peer, "local"))
        kernel.run()
        assert [m.payload for m in peer_inbox] == ["local"]


class TestDropProbability:
    def test_drop_applies_only_to_the_configured_link_class(self, net, kernel):
        src, _ = sink(net, 1)
        lan, lan_inbox = sink(net, 2)
        wan, wan_inbox = sink(net, 3)
        net.drop_probability[LinkClass.WIDE_AREA] = 1.0
        net.send(Message.request(src, lan, "lan"))
        net.send(Message.request(src, wan, "wan"))
        kernel.run()
        assert [m.payload for m in lan_inbox] == ["lan"]
        assert wan_inbox == []  # silently dropped: no failure notice either
        assert net.stats.drops == 1

    def test_fractional_probability_follows_the_rng(self, net, kernel):
        # Draws alternate below/above p: drop, deliver, drop, deliver.
        net.rng = _ScriptedRng([0.1, 0.9, 0.2, 0.8])
        net.drop_probability[LinkClass.SAME_SITE] = 0.5
        src, _ = sink(net, 1)
        dst, inbox = sink(net, 2)
        for i in range(4):
            net.send(Message.request(src, dst, i))
        kernel.run()
        assert [m.payload for m in inbox] == [1, 3]
        assert net.stats.drops == 2

    def test_zero_probability_never_consults_the_rng(self, net, kernel):
        net.rng = _ScriptedRng([])  # any draw would IndexError
        src, _ = sink(net, 1)
        dst, inbox = sink(net, 2)
        net.send(Message.request(src, dst, "ok"))
        kernel.run()
        assert len(inbox) == 1


class TestStatsReconciliation:
    def test_every_sent_message_is_accounted_once(self, net, kernel):
        """sent == delivered + drops + bounced, under mixed failures."""
        src, src_inbox = sink(net, 1)
        lan, lan_inbox = sink(net, 2)
        wan, wan_inbox = sink(net, 3)
        stale = net.allocate_element(2)  # never registered

        net.drop_probability[LinkClass.WIDE_AREA] = 1.0
        for i in range(3):
            net.send(Message.request(src, lan, f"ok{i}"))  # delivered
        for i in range(2):
            net.send(Message.request(src, wan, f"drop{i}"))  # dropped
        for i in range(2):
            net.send(Message.request(src, stale, f"stale{i}"))  # bounced
        net.drop_probability[LinkClass.WIDE_AREA] = 0.0
        net.partition("uva", "doe")
        net.send(Message.request(src, wan, "blocked"))  # partition-bounced
        kernel.run()

        stats = net.stats
        assert stats.messages_sent == 8
        assert stats.messages_delivered == len(lan_inbox) == 3
        assert stats.drops == 2
        assert stats.partition_blocks == 1
        # Partition blocks and stale addresses both bounce a notice:
        assert stats.delivery_failures == 3
        assert (
            stats.messages_sent
            == stats.messages_delivered + stats.drops + stats.delivery_failures
        )
        # The sender heard one DELIVERY_FAILURE per bounced request.
        notices = [
            m for m in src_inbox if m.kind is MessageKind.DELIVERY_FAILURE
        ]
        assert len(notices) == 3
        assert wan_inbox == []

    def test_by_class_counters_cover_all_sends(self, net, kernel):
        src, _ = sink(net, 1)
        lan, _ = sink(net, 2)
        wan, _ = sink(net, 3)
        net.send(Message.request(src, lan, "a"))
        net.send(Message.request(src, wan, "b"))
        net.send(Message.request(src, src, "self"))
        kernel.run()
        by_class = net.stats.by_class
        assert sum(by_class.values()) == net.stats.messages_sent == 3
        assert by_class[LinkClass.SAME_SITE] == 1
        assert by_class[LinkClass.WIDE_AREA] == 1
        assert by_class[LinkClass.SAME_HOST] == 1

    def test_reset_zeroes_everything(self, net, kernel):
        src, _ = sink(net, 1)
        dst, _ = sink(net, 2)
        net.send(Message.request(src, dst, "x"))
        kernel.run()
        net.stats.reset()
        assert net.stats.messages_sent == 0
        assert net.stats.messages_delivered == 0
        assert all(v == 0 for v in net.stats.by_class.values())
