"""Scheduling Agent policies (sections 3.7-3.8 hooks)."""

import pytest

from repro import errors
from repro.metrics.counters import ComponentKind
from repro.core.server import ObjectServer
from repro.scheduling.agent import (
    LeastLoadedSchedulingAgent,
    RandomSchedulingAgent,
    RoundRobinSchedulingAgent,
    StaticSchedulingAgent,
)


def start_scheduler(system, impl, name="sched"):
    sched_class = system.standard_classes["StandardScheduler"]
    loid = sched_class.impl._allocate_instance_loid()
    server = ObjectServer(
        system.services,
        loid,
        impl,
        host=system.site_hosts[system.sites[0].name][0],
        component_kind=ComponentKind.SCHEDULER,
        component_name=name,
    )
    server.runtime.set_binding_agent(system.agents[system.sites[0].name].binding())
    sched_class.impl.register_out_of_band(server.binding())
    return server


class TestPolicies:
    def test_round_robin_cycles(self, fresh_legion):
        system, cls = fresh_legion
        magistrates = [m.loid for m in system.magistrates.values()]
        sched = start_scheduler(system, RoundRobinSchedulingAgent(magistrates))
        picks = [
            system.call(sched.loid, "ChooseMagistrate", cls.loid, None)
            for _ in range(4)
        ]
        assert picks[0] != picks[1]
        assert picks[0] == picks[2]
        assert picks[1] == picks[3]

    def test_candidates_override_pool(self, fresh_legion):
        system, cls = fresh_legion
        magistrates = [m.loid for m in system.magistrates.values()]
        sched = start_scheduler(system, RoundRobinSchedulingAgent(magistrates))
        only = [magistrates[1]]
        picks = {
            system.call(sched.loid, "ChooseMagistrate", cls.loid, only)
            for _ in range(3)
        }
        assert picks == {magistrates[1]}

    def test_random_stays_in_pool(self, fresh_legion):
        system, cls = fresh_legion
        magistrates = [m.loid for m in system.magistrates.values()]
        sched = start_scheduler(system, RandomSchedulingAgent(magistrates))
        picks = {
            system.call(sched.loid, "ChooseMagistrate", cls.loid, None)
            for _ in range(10)
        }
        assert picks <= set(magistrates)

    def test_static_pins_and_respects_candidates(self, fresh_legion):
        system, cls = fresh_legion
        magistrates = [m.loid for m in system.magistrates.values()]
        sched = start_scheduler(system, StaticSchedulingAgent(magistrates[0]))
        assert (
            system.call(sched.loid, "ChooseMagistrate", cls.loid, None)
            == magistrates[0]
        )
        with pytest.raises(errors.SchedulingError):
            system.call(
                sched.loid, "ChooseMagistrate", cls.loid, [magistrates[1]]
            )

    def test_least_loaded_prefers_empty_magistrate(self, fresh_legion):
        system, cls = fresh_legion
        site0, site1 = system.sites[0].name, system.sites[1].name
        magistrates = [system.magistrates[site0].loid, system.magistrates[site1].loid]
        # Load up site0's magistrate.
        for _ in range(3):
            system.call(cls.loid, "Create", {"magistrate": magistrates[0]})
        sched = start_scheduler(system, LeastLoadedSchedulingAgent(magistrates))
        pick = system.call(sched.loid, "ChooseMagistrate", cls.loid, None)
        assert pick == magistrates[1]

    def test_empty_pool_rejected(self, fresh_legion):
        system, cls = fresh_legion
        sched = start_scheduler(system, RoundRobinSchedulingAgent([]))
        with pytest.raises(errors.SchedulingError):
            system.call(sched.loid, "ChooseMagistrate", cls.loid, None)

    def test_add_magistrate_extends_pool(self, fresh_legion):
        system, cls = fresh_legion
        magistrates = [m.loid for m in system.magistrates.values()]
        sched = start_scheduler(system, RoundRobinSchedulingAgent([magistrates[0]]))
        system.call(sched.loid, "AddMagistrate", magistrates[1])
        system.call(sched.loid, "AddMagistrate", magistrates[1])  # idempotent
        picks = {
            system.call(sched.loid, "ChooseMagistrate", cls.loid, None)
            for _ in range(4)
        }
        assert picks == set(magistrates)


class TestClassUsesSchedulingAgent:
    def test_create_consults_the_agent(self, fresh_legion):
        system, _cls = fresh_legion
        site1 = system.sites[1].name
        pinned = system.magistrates[site1].loid
        sched = start_scheduler(system, StaticSchedulingAgent(pinned), "pinner")
        from repro.workloads.apps import CounterImpl

        cls = system.create_class(
            "Scheduled",
            instance_factory="app.sched-counter",
            factory=CounterImpl,
            scheduling_agent=sched.loid,
            candidate_magistrates=None,
        )
        binding = system.call(cls.loid, "Create", {})
        row = system.call(cls.loid, "GetRow", binding.loid)
        assert row.current_magistrates == [pinned]
