"""Every experiment runs quick and passes all of its claim checks.

These are the same runs the benchmark harness prints; keeping them in the
test suite means `pytest tests/` alone certifies the reproduction.
"""

import pytest

from repro.experiments import (
    ablation_caching,
    ablation_propagation,
    e1_binding_path,
    e2_agent_load,
    e3_combining_tree,
    e4_class_cloning,
    e5_lifecycle,
    e6_stale_bindings,
    e7_replication,
    e8_inheritance,
    e9_scaling,
    e10_bootstrap,
    e11_autonomy,
    e12_loids,
    e13_availability,
    e14_autoscale,
    e15_overload,
)
from repro.experiments.ablation_ttl_locality import run_locality, run_ttl

ALL_EXPERIMENTS = [
    e1_binding_path,
    e2_agent_load,
    e3_combining_tree,
    e4_class_cloning,
    e5_lifecycle,
    e6_stale_bindings,
    e7_replication,
    e8_inheritance,
    e9_scaling,
    e10_bootstrap,
    e11_autonomy,
    e12_loids,
    e13_availability,
    e14_autoscale,
    e15_overload,
    ablation_propagation,
    ablation_caching,
]


@pytest.mark.parametrize(
    "module", ALL_EXPERIMENTS, ids=lambda m: m.__name__.rsplit(".", 1)[-1]
)
def test_experiment_claims_hold(module):
    result = module.run(quick=True, seed=0)
    failed = [c for c in result.checks if not c.passed]
    assert not failed, f"{result.experiment} failed: {[str(c) for c in failed]}"
    # The rendered report must be printable and mention the claim.
    report = result.render()
    assert result.experiment in report
    assert "claim:" in report


@pytest.mark.parametrize("runner", [run_ttl, run_locality], ids=["a3_ttl", "a4_locality"])
def test_split_ablations_hold(runner):
    result = runner(quick=True, seed=0)
    failed = [c for c in result.checks if not c.passed]
    assert not failed, f"{result.experiment} failed: {[str(c) for c in failed]}"


def test_experiments_are_seed_deterministic():
    a = e1_binding_path.run(quick=True, seed=3)
    b = e1_binding_path.run(quick=True, seed=3)
    assert a.recorder.xs == b.recorder.xs
    for name in a.recorder.series_names():
        assert a.recorder.series(name) == b.recorder.series(name)
