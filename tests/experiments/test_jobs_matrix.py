"""Cross ``--jobs`` determinism matrix: the parallel sweep is byte-identical.

``run_many``'s contract is that ``--jobs N`` is purely a wall-clock
optimisation: every experiment builds its own seeded universe, so the
rendered reports -- claim tables, check details, kernel fingerprints --
must match the sequential reference run byte for byte.  This matrix pins
that across E1-E15, including e14 whose autoscaler actions (spawn/retire
schedules) feed directly into the printed table and e15 whose per-call
overload records decide every goodput figure.
"""

from repro.experiments.runner import RUNNERS, run_many

MATRIX = [f"e{i}" for i in range(1, 16)]


def test_registry_covers_the_matrix():
    missing = [name for name in MATRIX if name not in RUNNERS]
    assert not missing, f"experiments absent from the registry: {missing}"


def test_jobs_1_and_jobs_4_reports_are_byte_identical():
    sequential = run_many(MATRIX, quick=True, seeds=(0,), jobs=1)
    parallel = run_many(MATRIX, quick=True, seeds=(0,), jobs=4)
    assert [(o.name, o.seed) for o in sequential] == [
        (o.name, o.seed) for o in parallel
    ]
    for seq, par in zip(sequential, parallel, strict=True):
        assert seq.passed, f"{seq.name} failed sequentially:\n{seq.report}"
        assert seq.report == par.report, f"{seq.name} diverged across --jobs"
