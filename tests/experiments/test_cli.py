"""The experiment-suite CLI (python -m repro.experiments)."""


import pytest

from repro.experiments.__main__ import RUNNERS, main


class TestCLI:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for name in ("e1", "e12", "a1", "a4"):
            assert name in out.split()

    def test_runner_table_is_complete(self):
        assert set(RUNNERS) == {f"e{i}" for i in range(1, 19)} | {
            "a1",
            "a2",
            "a3",
            "a4",
        }

    def test_subset_run_passes(self, capsys):
        assert main(["e1", "e12", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "all claims hold" in out
        assert "E1" in out and "E12" in out

    def test_unknown_experiment_errors(self):
        with pytest.raises(SystemExit):
            main(["e99"])

    def test_trace_flag_writes_chrome_trace_json(self, capsys, tmp_path):
        import json

        assert main(["e1", "--quick", "--trace", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "trace:" in out
        trace_file = tmp_path / "e1-seed0.trace.json"
        doc = json.loads(trace_file.read_text())
        assert doc["traceEvents"]
        assert any(e.get("ph") == "X" for e in doc["traceEvents"])

    def test_trace_flag_is_inert_for_unaware_experiments(self, capsys, tmp_path):
        # e12 does not take the trace kwarg; the flag must not crash it.
        assert main(["e12", "--quick", "--trace", str(tmp_path)]) == 0
        assert "all claims hold" in capsys.readouterr().out
