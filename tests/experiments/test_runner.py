"""The parallel experiment runner: fan-out equivalence and CLI plumbing."""

import pytest

from repro.experiments.runner import (
    RUNNERS,
    RunOutcome,
    main,
    render_summary,
    run_many,
    run_one,
)


def test_run_one_returns_primitives():
    outcome = run_one("e1", quick=True, seed=0)
    assert outcome.name == "e1"
    assert outcome.experiment == "E1"
    assert outcome.passed
    assert "binding resolution path" in outcome.report
    assert outcome.elapsed >= 0.0
    assert outcome.seed == 0


def test_parallel_matches_sequential():
    # e13 rides along: chaos runs must be byte-identical across job counts.
    names = ["e1", "e12", "e13"]
    seq = run_many(names, quick=True, seeds=(0,), jobs=1)
    par = run_many(names, quick=True, seeds=(0,), jobs=2)
    assert [o.report for o in par] == [o.report for o in seq]
    assert [o.passed for o in par] == [o.passed for o in seq]
    assert [(o.name, o.seed) for o in par] == [("e1", 0), ("e12", 0), ("e13", 0)]


def test_multi_seed_ordering():
    outcomes = run_many(["e1"], quick=True, seeds=(0, 1), jobs=2)
    assert [(o.name, o.seed) for o in outcomes] == [("e1", 0), ("e1", 1)]


def test_crashed_experiment_is_a_failure(monkeypatch):
    def boom(quick, seed):
        raise RuntimeError("injected crash")

    monkeypatch.setitem(RUNNERS, "e1", boom)
    outcome = run_one("e1", quick=True, seed=0)
    assert not outcome.passed
    assert "injected crash" in outcome.report


def test_render_summary_verdict():
    ok = RunOutcome("e1", "E1", True, "", 0.1, 0)
    bad = RunOutcome("e2", "E2", False, "", 0.2, 0)
    text = render_summary([ok, bad], multi_seed=False)
    assert "SOME CLAIMS FAILED" in text
    assert "PASS  E1" in text and "FAIL  E2" in text
    assert "all claims hold" in render_summary([ok], multi_seed=False)


def test_cli_parallel_quick_subset(capsys):
    rc = main(["e1", "e12", "--quick", "--jobs", "2"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "all claims hold" in out


def test_cli_rejects_full_and_quick():
    with pytest.raises(SystemExit):
        main(["--full", "--quick"])


def test_cli_rejects_bad_jobs():
    with pytest.raises(SystemExit):
        main(["--jobs", "0"])
