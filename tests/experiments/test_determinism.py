"""Determinism regression: same (experiment, quick, seed) => same universe.

The fast-path kernel (tuple heap + resume trampoline) is only admissible
because it preserves event order bit-for-bit; these tests pin that down
end-to-end through real experiments.  E1 exercises the binding walk, E9
builds and drives many systems of different sizes.
"""

import pytest

from repro.experiments.runner import RUNNERS


@pytest.mark.parametrize("name", ["e1", "e9"])
def test_same_seed_same_universe(name):
    first = RUNNERS[name](quick=True, seed=0)
    second = RUNNERS[name](quick=True, seed=0)
    assert first.passed and second.passed
    # Claim tables and check details are identical text.
    assert first.render() == second.render()
    # Kernel fingerprints: identical final clocks and event counts.
    assert first.sim_clock is not None and first.sim_events is not None
    assert first.sim_clock == second.sim_clock
    assert first.sim_events == second.sim_events


def test_different_seed_different_universe():
    base = RUNNERS["e9"](quick=True, seed=0)
    other = RUNNERS["e9"](quick=True, seed=1)
    # Claims hold either way; the realized universe differs.
    assert base.passed and other.passed
    assert (base.sim_clock, base.sim_events) != (other.sim_clock, other.sim_events)
