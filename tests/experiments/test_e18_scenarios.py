"""E18: the scenario x subsystem matrix and its CLI surface.

The cross-shard byte-identity of the *default* E18 arms is covered by
the shard matrix (``test_shard_matrix.py``); here the same contract is
pinned with the subsystem flags applied -- every scenario must stay
deterministic under ``--faults``, ``--governor``, and ``--mega`` -- plus
the report artifact and the ``--list-scenarios`` listing.
"""

import json

from repro.experiments import e18_scenarios, runner
from repro.scenarios import scenario_names


def test_units_cover_the_scenario_x_arm_matrix():
    units = e18_scenarios.shard_units(quick=True)
    names = {u[0] for u in units}
    arms = {u[1] for u in units}
    assert names == set(scenario_names())
    assert {"plain", "faults", "governor", "mega"} <= arms
    assert len(units) == len(names) * len(arms)


def test_optional_flags_add_their_arms():
    units = e18_scenarios.shard_units(
        quick=True, overload=6.0, autoscale=0.7, replicas=3
    )
    arms = {u[1] for u in units}
    assert {"overload", "autoscale", "replicas"} <= arms


def test_e18_is_byte_identical_across_shards_under_the_subsystem_flags():
    kwargs = dict(quick=True, seed=0, faults=2.0, governor=4.0, mega=50_000)
    seq = runner.run_one("e18", shards=1, **kwargs)
    par = runner.run_one("e18", shards=4, **kwargs)
    assert seq.passed, seq.report
    assert seq.report == par.report
    assert "faults arm" in seq.report
    assert "governor arm" in seq.report
    assert "mega arm" in seq.report


def test_report_artifact_is_written_and_deterministic(tmp_path):
    a, b = tmp_path / "a", tmp_path / "b"
    ra = e18_scenarios.run(quick=True, seed=0, report=str(a))
    rb = e18_scenarios.run(quick=True, seed=0, report=str(b))
    assert ra.passed and rb.passed
    pa = a / "e18-scenarios-seed0.json"
    pb = b / "e18-scenarios-seed0.json"
    assert pa.read_bytes() == pb.read_bytes()
    payload = json.loads(pa.read_text())
    assert set(payload["scenarios"]) == set(scenario_names())
    denied = payload["scenarios"]["multi-tenant"]["plain"]["outcomes"]["denied"]
    assert denied > 0


def test_list_scenarios_flag_prints_the_catalog(capsys):
    assert runner.main(["--list-scenarios"]) == 0
    out = capsys.readouterr().out
    for name in scenario_names():
        assert name in out
    assert "MayI" in out  # descriptions are shown, not just names
