"""Unit tests for the experiment harness machinery itself."""


from repro.experiments.common import (
    Check,
    ExperimentResult,
    count_messages,
    populate,
    site_of_binding,
    uniform_sites,
)
from repro.metrics.recorder import SeriesRecorder


class TestChecksAndResults:
    def make_result(self):
        recorder = SeriesRecorder(x_label="n")
        recorder.add(1, y=2)
        return ExperimentResult(
            experiment="EX",
            title="test experiment",
            claim="things hold",
            recorder=recorder,
        )

    def test_passed_requires_all_checks(self):
        result = self.make_result()
        result.check("a", True)
        assert result.passed
        result.check("b", False, "broke")
        assert not result.passed

    def test_render_contains_everything(self):
        result = self.make_result()
        result.check("good", True, "fine")
        result.check("bad", False, "broke")
        result.notes = "a note"
        text = result.render()
        assert "EX" in text and "things hold" in text
        assert "[PASS] good (fine)" in text
        assert "[FAIL] bad (broke)" in text
        assert "a note" in text

    def test_check_str(self):
        assert str(Check("x", True)) == "[PASS] x"
        assert str(Check("x", False, "d")) == "[FAIL] x (d)"


class TestHelpers:
    def test_uniform_sites(self):
        sites = uniform_sites(3, hosts_per_site=2, prefix="org")
        assert [s.name for s in sites] == ["org0", "org1", "org2"]
        assert all(s.hosts == 2 for s in sites)

    def test_count_messages(self, fresh_legion):
        system, cls = fresh_legion
        binding = system.call(cls.loid, "Create", {})
        system.call(binding.loid, "Ping")  # warm
        _, messages = count_messages(
            system, lambda: system.call(binding.loid, "Ping")
        )
        assert messages == 2  # warm call: request + reply

    def test_populate_creates_classes_and_instances(self, fresh_legion):
        system, _cls = fresh_legion
        out = populate(system, n_classes=2, instances_per_class=3, name_prefix="pop")
        assert len(out) == 2
        for class_loid, instances in out.items():
            assert class_loid.is_class
            assert len(instances) == 3
            for binding in instances:
                assert system.call(binding.loid, "Ping") == "pong"

    def test_site_of_binding(self, fresh_legion):
        system, cls = fresh_legion
        site = system.sites[1].name
        binding = system.call(
            cls.loid, "Create", {"magistrate": system.magistrates[site].loid}
        )
        assert site_of_binding(system, binding) == site
