"""E15 goodput-under-overload: traced runs, audits, and the --overload knob."""

from __future__ import annotations

import json
import os

from repro.experiments import e15_overload


def test_traced_overload_run_audits_and_exports(tmp_path):
    trace_dir = str(tmp_path / "traces")
    report_dir = str(tmp_path / "reports")
    result = e15_overload.run(
        quick=True, seed=0, overload=2, trace=trace_dir, report=report_dir
    )
    failed = [c for c in result.checks if not c.passed]
    assert not failed, [str(c) for c in failed]
    # --overload clamps the sweep: top level is the requested multiplier.
    audit_checks = [c for c in result.checks if "trace:" in c.name]
    assert audit_checks, "traced runs must carry TraceAudit findings"
    # Per-level artifacts landed on disk.
    traces = os.listdir(trace_dir)
    assert traces and all(name.endswith(".json") for name in traces)
    report_files = os.listdir(report_dir)
    assert any("e15-overload" in name for name in report_files)
    payload = json.loads(
        (tmp_path / "reports" / "e15-overload-seed0.json").read_text()
    )
    assert payload["levels"], payload.keys()


def test_overload_multiplier_overrides_the_sweep_top():
    result = e15_overload.run(quick=True, seed=0, overload=3)
    assert result.passed, [str(c) for c in result.checks if not c.passed]
    assert max(result.recorder.xs) == 3
