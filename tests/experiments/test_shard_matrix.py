"""Cross ``--shards`` determinism matrix: sharded sweeps are byte-identical.

The sharded runner's contract mirrors ``--jobs``: ``--shards N`` is
purely a wall-clock optimisation.  Each SHARDED experiment decomposes
into independent units (one seeded universe per jurisdiction sweep
point), measured in any order on worker processes, and
``shard_finish`` merges the partials in unit order -- so the rendered
report must match the sequential reference byte for byte at any shard
count.  ``run()`` itself is composed from the same three hooks, which
is what makes the sequential run the reference.
"""

from repro.experiments.runner import SHARDED, run_one

MATRIX = ["e9", "e13", "e15", "e16", "e17", "e18"]


def test_sharded_registry_covers_the_matrix():
    assert sorted(SHARDED) == sorted(MATRIX)
    for name, module in SHARDED.items():
        for hook in ("shard_units", "shard_measure", "shard_finish"):
            assert hasattr(module, hook), f"{name} lacks {hook}"


def test_every_sharded_sweep_has_parallelism_to_farm_out():
    for name, module in SHARDED.items():
        assert len(module.shard_units(quick=True)) > 1, name


def test_run_is_composed_from_the_shard_hooks():
    """The sequential ``run()`` and a hand-driven measure/finish agree."""
    module = SHARDED["e9"]
    partials = [
        module.shard_measure(unit, quick=True, seed=0)
        for unit in module.shard_units(quick=True)
    ]
    composed = module.shard_finish(partials, quick=True, seed=0)
    direct = module.run(quick=True, seed=0)
    assert composed.render() == direct.render()


def test_shards_1_and_shards_4_reports_are_byte_identical():
    for name in MATRIX:
        seq = run_one(name, quick=True, seed=0, shards=1)
        par = run_one(name, quick=True, seed=0, shards=4)
        assert seq.passed, f"{name} failed sequentially:\n{seq.report}"
        assert seq.report == par.report, f"{name} diverged across --shards"
