"""Unit tests for counters and the series recorder."""

import math

import pytest

from repro.metrics.counters import ComponentId, ComponentKind, MetricsRegistry
from repro.metrics.recorder import SeriesRecorder


def comp(name, kind=ComponentKind.BINDING_AGENT):
    return ComponentId(kind, name)


class TestMetricsRegistry:
    def test_incr_and_get(self):
        metrics = MetricsRegistry()
        metrics.incr(comp("a"), "requests")
        metrics.incr(comp("a"), "requests", 2)
        assert metrics.get(comp("a")) == 3
        assert metrics.get(comp("b")) == 0

    def test_max_by_kind(self):
        metrics = MetricsRegistry()
        metrics.incr(comp("a"), "requests", 5)
        metrics.incr(comp("b"), "requests", 9)
        metrics.incr(comp("m", ComponentKind.MAGISTRATE), "requests", 100)
        assert metrics.max_by_kind(ComponentKind.BINDING_AGENT) == 9
        assert metrics.max_by_kind(ComponentKind.LEGION_CLASS) == 0

    def test_totals_by_kind(self):
        metrics = MetricsRegistry()
        metrics.incr(comp("a"), "requests", 5)
        metrics.incr(comp("b"), "requests", 9)
        assert metrics.totals_by_kind()[ComponentKind.BINDING_AGENT] == 14

    def test_loads_and_top(self):
        metrics = MetricsRegistry()
        for name, n in [("a", 1), ("b", 5), ("c", 3)]:
            metrics.incr(comp(name), "requests", n)
        assert metrics.loads(ComponentKind.BINDING_AGENT) == {"a": 1, "b": 5, "c": 3}
        top = metrics.top(2)
        assert [t[0].name for t in top] == ["b", "c"]

    def test_reset(self):
        metrics = MetricsRegistry()
        metrics.incr(comp("a"), "requests")
        metrics.reset()
        assert metrics.get(comp("a")) == 0
        assert metrics.components() == []


class TestSeriesRecorder:
    def test_table_rendering(self):
        rec = SeriesRecorder(x_label="n")
        rec.add(1, a=10, b=0.5)
        rec.add(2, a=20)
        table = rec.to_table(title="T")
        assert "T" in table
        assert "n" in table and "a" in table and "b" in table
        assert "-" in table  # missing b at n=2

    def test_series_alignment(self):
        rec = SeriesRecorder()
        rec.add(1, a=10)
        rec.add(2, b=5)
        assert rec.series("a") == [10, None]
        assert rec.series("b") == [None, 5]
        assert rec.series_names() == ["a", "b"]

    def test_linear_slope(self):
        rec = SeriesRecorder()
        for x in (1, 2, 3, 4):
            rec.add(x, y=3 * x + 1)
        assert rec.slope("y") == pytest.approx(3.0)

    def test_log_log_slope_recovers_exponent(self):
        rec = SeriesRecorder()
        for x in (2, 4, 8, 16):
            rec.add(x, y=5 * x**2)
        assert rec.slope("y", log_log=True) == pytest.approx(2.0, abs=1e-6)

    def test_flat_series_log_log_slope_zero(self):
        rec = SeriesRecorder()
        for x in (2, 4, 8):
            rec.add(x, y=7)
        assert rec.slope("y", log_log=True) == pytest.approx(0.0, abs=1e-9)

    def test_slope_needs_two_points(self):
        rec = SeriesRecorder()
        rec.add(1, y=1)
        with pytest.raises(ValueError):
            rec.slope("y")

    def test_ratio(self):
        rec = SeriesRecorder()
        rec.add(1, y=2)
        rec.add(2, y=8)
        assert rec.ratio("y") == 4.0

    def test_ratio_from_zero_is_inf(self):
        rec = SeriesRecorder()
        rec.add(1, y=0)
        rec.add(2, y=8)
        assert rec.ratio("y") == math.inf
