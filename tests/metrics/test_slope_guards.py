"""Guard rails of SeriesRecorder.slope on log-log axes.

Experiment sweeps legitimately produce zero counts (an unloaded
component) and may include an x=0 row; the log-log fit must handle both
without blowing up, while still refusing genuinely malformed data.
"""

import pytest

from repro.metrics.recorder import SeriesRecorder


def _recorder(points):
    recorder = SeriesRecorder(x_label="n")
    for x, y in points:
        recorder.add(x, load=y)
    return recorder


class TestLogLogGuards:
    def test_all_zero_series_fits_flat(self):
        recorder = _recorder([(1, 0), (2, 0), (4, 0)])
        assert recorder.slope("load", log_log=True) == pytest.approx(0.0)

    def test_zero_values_mixed_with_positive_do_not_raise(self):
        recorder = _recorder([(1, 0), (2, 4), (4, 8)])
        recorder.slope("load", log_log=True)  # clamped, not an error

    def test_x_at_zero_is_skipped_not_fatal(self):
        recorder = _recorder([(0, 5), (1, 5), (2, 5)])
        assert recorder.slope("load", log_log=True) == pytest.approx(0.0)

    def test_skipping_x_zero_does_not_change_remaining_fit(self):
        with_zero = _recorder([(0, 99), (1, 2), (2, 4), (4, 8)])
        without = _recorder([(1, 2), (2, 4), (4, 8)])
        assert with_zero.slope("load", log_log=True) == pytest.approx(
            without.slope("load", log_log=True)
        )

    def test_too_few_points_after_skipping_raises_clearly(self):
        recorder = _recorder([(0, 5), (-1, 5), (2, 5)])
        with pytest.raises(ValueError, match="x<=0"):
            recorder.slope("load", log_log=True)

    def test_negative_value_raises_with_context(self):
        recorder = _recorder([(1, 2), (2, -3), (4, 8)])
        with pytest.raises(ValueError, match="negative value -3.0 at x=2.0"):
            recorder.slope("load", log_log=True)

    def test_linear_axes_accept_zero_and_negative_freely(self):
        recorder = _recorder([(0, -5), (1, 0), (2, 5)])
        assert recorder.slope("load") == pytest.approx(5.0)

    def test_under_two_points_still_raises(self):
        recorder = _recorder([(1, 2)])
        with pytest.raises(ValueError, match=">= 2 points"):
            recorder.slope("load", log_log=True)

    def test_growth_exponent_recovered(self):
        recorder = _recorder([(1, 3), (2, 6), (4, 12), (8, 24)])
        assert recorder.slope("load", log_log=True) == pytest.approx(1.0)
