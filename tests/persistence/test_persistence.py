"""Unit tests for OPRs, stores, and vaults (paper 3.1)."""

import pytest

from repro.errors import StorageError
from repro.naming.loid import LOID
from repro.persistence.opr import OPRecord
from repro.persistence.storage import PersistentStore
from repro.persistence.vault import Vault


def make_opr(seq=1, state=None):
    return OPRecord(
        loid=LOID.for_instance(40, seq),
        class_loid=LOID.for_class(40),
        factory_chain=[("app.counter", {"start": 5})],
        state=state,
        component_kind="application",
        annotations={"memo": "x"},
    )


class TestOPRecord:
    def test_bytes_roundtrip(self):
        opr = make_opr(state=b"\x01\x02")
        back = OPRecord.from_bytes(opr.to_bytes())
        assert back.loid == opr.loid
        assert back.class_loid == opr.class_loid
        assert back.factory_chain == opr.factory_chain
        assert back.state == b"\x01\x02"
        assert back.annotations == {"memo": "x"}

    def test_corrupt_bytes_rejected(self):
        with pytest.raises(StorageError):
            OPRecord.from_bytes(b"not a pickle")

    def test_with_state_copies(self):
        opr = make_opr()
        stamped = opr.with_state(b"abc")
        assert stamped.state == b"abc"
        assert opr.state is None  # original untouched
        assert stamped.factory_chain == opr.factory_chain

    def test_size_positive(self):
        assert make_opr().size > 0


class TestPersistentStore:
    def test_write_read_delete(self):
        store = PersistentStore("uva", "disk0")
        opr = make_opr()
        address = store.write(opr)
        assert store.exists(address)
        assert store.read(address).loid == opr.loid
        store.delete(address)
        assert not store.exists(address)
        with pytest.raises(StorageError):
            store.read(address)

    def test_addresses_are_jurisdiction_local(self):
        store = PersistentStore("uva", "disk0")
        other = PersistentStore("doe", "disk0")
        address = store.write(make_opr())
        # Section 3.1.1: an Object Persistent Address is only meaningful
        # within its own jurisdiction.
        with pytest.raises(StorageError):
            other.read(address)

    def test_capacity_enforced(self):
        store = PersistentStore("uva", "tiny", capacity_bytes=10)
        with pytest.raises(StorageError):
            store.write(make_opr())

    def test_distinct_filenames(self):
        store = PersistentStore("uva", "disk0")
        a = store.write(make_opr(1))
        b = store.write(make_opr(1))
        assert a.filename != b.filename

    def test_list_files(self):
        store = PersistentStore("uva", "disk0")
        store.write(make_opr(1))
        store.write(make_opr(2))
        assert len(store.list_files()) == 2


class TestVault:
    def make_vault(self, disks=2, capacity=None):
        vault = Vault("uva")
        for i in range(disks):
            vault.add_store(PersistentStore("uva", f"disk{i}", capacity))
        return vault

    def test_store_and_load(self):
        vault = self.make_vault()
        opr = make_opr(state=b"s")
        vault.store_opr(opr)
        assert vault.holds(opr.loid)
        assert vault.load_opr(opr.loid).state == b"s"

    def test_restore_replaces_old_opr(self):
        vault = self.make_vault()
        opr = make_opr()
        vault.store_opr(opr.with_state(b"old"))
        vault.store_opr(opr.with_state(b"new"))
        assert vault.opr_count == 1
        assert vault.load_opr(opr.loid).state == b"new"

    def test_load_missing_raises(self):
        with pytest.raises(StorageError):
            self.make_vault().load_opr(LOID.for_instance(40, 9))

    def test_delete_idempotent(self):
        vault = self.make_vault()
        opr = make_opr()
        vault.store_opr(opr)
        vault.delete_opr(opr.loid)
        vault.delete_opr(opr.loid)
        assert not vault.holds(opr.loid)

    def test_balances_across_disks(self):
        vault = self.make_vault(disks=2)
        for i in range(1, 9):
            vault.store_opr(make_opr(i))
        sizes = [len(s) for s in vault.stores()]
        assert sizes == [4, 4]

    def test_wrong_jurisdiction_store_rejected(self):
        vault = Vault("uva")
        with pytest.raises(StorageError):
            vault.add_store(PersistentStore("doe", "disk0"))

    def test_duplicate_store_rejected(self):
        vault = self.make_vault(disks=1)
        with pytest.raises(StorageError):
            vault.add_store(PersistentStore("uva", "disk0"))

    def test_no_stores_raises(self):
        vault = Vault("uva")
        with pytest.raises(StorageError):
            vault.store_opr(make_opr())

    def test_full_vault_raises(self):
        vault = self.make_vault(disks=1, capacity=10)
        with pytest.raises(StorageError):
            vault.store_opr(make_opr())
