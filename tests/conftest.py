"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.context import SystemServices
from repro.core.relations import RelationGraph
from repro.metrics.counters import MetricsRegistry
from repro.net.latency import LatencyModel
from repro.net.network import Network
from repro.simkernel.kernel import SimKernel
from repro.simkernel.rng import RngStreams
from repro.system.legion import LegionSystem, SiteSpec
from repro.workloads.apps import CounterImpl


@pytest.fixture
def kernel() -> SimKernel:
    """A fresh simulation kernel."""
    return SimKernel()


@pytest.fixture
def services(kernel) -> SystemServices:
    """Bare SystemServices with a uniform-latency network (no Legion)."""
    rng = RngStreams(7)
    latency = LatencyModel.uniform(1.0)
    network = Network(kernel, latency, rng=rng.stream("net"))
    return SystemServices(
        kernel=kernel,
        network=network,
        rng=rng,
        metrics=MetricsRegistry(),
        relations=RelationGraph(),
    )


@pytest.fixture(scope="module")
def legion():
    """A module-shared 2-site Legion system with a Counter class.

    Tests that mutate global state (delete core objects, partition the
    network without healing, ...) must build their own system instead.
    """
    system = LegionSystem.build(
        [SiteSpec("uva", hosts=2), SiteSpec("doe", hosts=2)], seed=11
    )
    cls = system.create_class("Counter", factory=CounterImpl)
    return system, cls


@pytest.fixture
def fresh_legion():
    """A private 2-site system for mutating tests."""
    system = LegionSystem.build(
        [SiteSpec("uva", hosts=2), SiteSpec("doe", hosts=2)], seed=13
    )
    cls = system.create_class("Counter", factory=CounterImpl)
    return system, cls
