"""ChaosDriver faults and the self-healing runtime, end to end."""

import pytest

from repro.core.runtime import RetryPolicy
from repro.faults.driver import ChaosDriver, eligible_hosts
from repro.faults.log import FaultLog
from repro.faults.plan import FaultPlan
from repro.faults.recovery import RecoverySweeper
from repro.net.latency import LinkClass
from repro.system.legion import LegionSystem, SiteSpec

PATIENT = RetryPolicy(
    max_attempts=10,
    base_backoff=20.0,
    backoff_factor=2.0,
    max_backoff=200.0,
    retry_partitions=True,
    retry_resolution_failures=True,
)


def _build(seed=21):
    """A 2-site testbed whose Counter class lives on a protected host."""
    system = LegionSystem.build(
        [SiteSpec("east", hosts=3), SiteSpec("west", hosts=3)], seed=seed
    )
    from repro.workloads.apps import CounterImpl

    site0 = system.sites[0].name
    cls = system.create_class(
        "Counter",
        factory=CounterImpl,
        magistrate=system.magistrates[site0].loid,
        host=system.host_servers[system.site_hosts[site0][0]].loid,
    )
    return system, cls


def _find_host(system, loid):
    """The host id whose process table holds ``loid`` (live)."""
    for host_id, server in system.host_servers.items():
        entry = server.impl.processes.find(loid)
        if entry is not None and not entry.crashed:
            return host_id
    return None


def _instance_on_crashable_host(system, cls):
    """Create counters until one lands on a non-protected host."""
    crashable = set(eligible_hosts(system))
    for _ in range(16):
        binding = system.create_instance(cls.loid)
        host_id = _find_host(system, binding.loid)
        if host_id in crashable:
            return binding, host_id
    raise AssertionError("placement never used a crashable host")


def _checkpoint(system, cls, binding):
    row = system.call(cls.loid, "GetRow", binding.loid)
    system.call(row.current_magistrates[0], "Checkpoint", binding.loid)
    return row.current_magistrates[0]


def _sweep_all(system):
    for site in sorted(system.magistrates):
        fut = system.spawn(system.magistrates[site].impl.sweep_hosts())
        system.kernel.run_until_complete(fut)


class TestHostCrash:
    def test_crash_kills_residents_and_unregisters_endpoints(self):
        system, cls = _build()
        binding, host_id = _instance_on_crashable_host(system, cls)
        log = FaultLog()
        driver = ChaosDriver(system, FaultPlan(), log)
        driver.crash_host(host_id)
        server = system.host_servers[host_id]
        assert not server.active
        assert not server.impl.processes.running()
        assert any(
            i.kind == "object-lost" and i.target == str(binding.loid)
            for i in log.injected
        )

    def test_protected_hosts_are_never_crashed(self):
        system, _cls = _build()
        protected = system.site_hosts[system.sites[0].name][0]
        assert protected not in eligible_hosts(system)
        driver = ChaosDriver(system, FaultPlan(), FaultLog())
        driver.crash_host(protected)
        assert system.host_servers[protected].active

    def test_sweep_recovers_checkpointed_state_on_surviving_host(self):
        system, cls = _build()
        binding, host_id = _instance_on_crashable_host(system, cls)
        system.call(binding.loid, "Increment", 7)
        _checkpoint(system, cls, binding)
        log = FaultLog()
        driver = ChaosDriver(system, FaultPlan(), log)
        driver.start()  # installs services.fault_log
        driver.crash_host(host_id)
        _sweep_all(system)
        new_host = _find_host(system, binding.loid)
        assert new_host is not None and new_host != host_id
        assert system.call(binding.loid, "Get") == 7
        assert str(binding.loid) in log.recovered_objects()

    def test_reactive_recovery_via_stale_binding_path(self):
        system, cls = _build()
        binding, host_id = _instance_on_crashable_host(system, cls)
        system.call(binding.loid, "Increment", 3)
        _checkpoint(system, cls, binding)
        client = system.new_client("patient")
        client.runtime.retry_policy = PATIENT
        system.call(binding.loid, "Get", client=client)  # warm the cache
        ChaosDriver(system, FaultPlan(), FaultLog()).crash_host(host_id)
        # No sweep: the call itself must detect the stale binding and
        # drive RecoverObject through the class.
        assert system.call(binding.loid, "Get", client=client) == 3
        assert client.runtime.stats.rebinds >= 1

    def test_recovery_survives_a_second_crash(self):
        system, cls = _build()
        binding, host_id = _instance_on_crashable_host(system, cls)
        system.call(binding.loid, "Increment", 9)
        _checkpoint(system, cls, binding)
        driver = ChaosDriver(system, FaultPlan(), FaultLog())
        driver.start()
        driver.crash_host(host_id)
        _sweep_all(system)
        second_host = _find_host(system, binding.loid)
        if second_host in set(eligible_hosts(system)):
            driver.crash_host(second_host)
            _sweep_all(system)
        # The checkpoint OPR must survive being consumed by the first
        # reactivation, or the second one would lose the state.
        assert system.call(binding.loid, "Get") == 9


class TestObjectCrash:
    def test_crash_object_then_recovery(self):
        system, cls = _build()
        binding, host_id = _instance_on_crashable_host(system, cls)
        system.call(binding.loid, "Increment", 5)
        _checkpoint(system, cls, binding)
        log = FaultLog()
        driver = ChaosDriver(system, FaultPlan(), log)
        driver.start()
        driver.crash_object(str(binding.loid))
        assert any(i.kind == "object-crash" for i in log.injected)
        _sweep_all(system)
        assert system.call(binding.loid, "Get") == 5

    def test_crash_object_misses_are_noops(self):
        system, _cls = _build()
        log = FaultLog()
        ChaosDriver(system, FaultPlan(), log).crash_object("O<999.999>")
        assert log.injected == []


class TestTransientFaults:
    def test_link_degrade_restores_prior_probability(self):
        system, _cls = _build()
        network = system.network
        before = network.drop_probability.get(LinkClass.WIDE_AREA, 0.0)
        log = FaultLog()
        driver = ChaosDriver(system, FaultPlan(), log)
        driver.degrade_link("wide-area", 0.5, duration=40.0)
        assert network.drop_probability[LinkClass.WIDE_AREA] == 0.5
        system.kernel.run()
        assert network.drop_probability[LinkClass.WIDE_AREA] == before
        kinds = [i.kind for i in log.injected]
        assert kinds == ["link-degrade", "link-restore"]

    def test_partition_heals_after_duration(self):
        system, cls = _build()
        binding = system.create_instance(cls.loid)
        east, west = system.sites[0].name, system.sites[1].name
        driver = ChaosDriver(system, FaultPlan(), FaultLog())
        driver.partition(east, west, duration=30.0)
        client = system.new_client("w", site=west)
        client.runtime.retry_policy = PATIENT
        # The patient client waits the heal out and then succeeds.
        assert system.call(binding.loid, "Get", client=client, timeout=100.0) == 0


class TestScheduledChaos:
    def test_scheduled_plan_is_deterministic_and_survivable(self):
        def run_once():
            system, cls = _build(seed=33)
            bindings = [system.create_instance(cls.loid) for _ in range(6)]
            for i, b in enumerate(bindings):
                system.call(b.loid, "Increment", i + 1)
                _checkpoint(system, cls, b)
            log = FaultLog()
            plan = FaultPlan.generate(
                system.services.rng.stream("chaos"),
                horizon=600.0,
                intensity=4.0,
                hosts=eligible_hosts(system),
                sites=[s.name for s in system.sites],
                objects=[str(b.loid) for b in bindings],
            )
            driver = ChaosDriver(system, plan, log)
            sweeper = RecoverySweeper(system, interval=80.0)
            driver.start()
            sweeper.start()
            system.kernel.run(until=system.kernel.now + 900.0)
            sweeper.stop()
            system.kernel.run()
            _sweep_all(system)
            values = [system.call(b.loid, "Get") for b in bindings]
            return plan, log, values

        plan_a, log_a, values_a = run_once()
        plan_b, log_b, values_b = run_once()
        assert plan_a.events == plan_b.events
        assert log_a.injected == log_b.injected
        assert values_a == values_b == [1, 2, 3, 4, 5, 6]
        lost = set(log_a.lost_objects())
        assert lost <= set(log_a.recovered_objects())

    def test_sweeper_stop_lets_kernel_drain(self):
        system, _cls = _build()
        sweeper = RecoverySweeper(system, interval=50.0)
        sweeper.start()
        procs = list(sweeper._procs)
        system.kernel.run(until=system.kernel.now + 120.0)
        sweeper.stop()
        system.kernel.run()  # must terminate: the sweep loops are dead
        assert not any(p.alive for p in procs)
