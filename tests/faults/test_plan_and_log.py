"""FaultPlan generation and FaultLog reconciliation."""

import json
import random

from repro.faults.log import FaultLog
from repro.faults.plan import FaultKind, FaultPlan

HOSTS = [2, 3, 5]
SITES = ["east", "west"]
OBJECTS = ["O<9.1>", "O<9.2>", "O<9.3>"]


def _plan(seed=4, intensity=5.0, horizon=2_000.0, **kw):
    return FaultPlan.generate(
        random.Random(seed),
        horizon=horizon,
        intensity=intensity,
        hosts=kw.pop("hosts", HOSTS),
        sites=kw.pop("sites", SITES),
        objects=kw.pop("objects", OBJECTS),
        **kw,
    )


class TestFaultPlan:
    def test_same_seed_same_plan(self):
        assert _plan(seed=4).events == _plan(seed=4).events

    def test_different_seeds_differ(self):
        assert _plan(seed=4).events != _plan(seed=5).events

    def test_zero_intensity_is_empty(self):
        assert len(_plan(intensity=0.0)) == 0

    def test_events_ordered_and_inside_horizon(self):
        plan = _plan()
        times = [e.time for e in plan]
        assert times == sorted(times)
        assert all(0.0 < t < 2_000.0 for t in times)

    def test_each_host_crashes_at_most_once(self):
        plan = _plan(intensity=50.0)
        crashed = [e.target for e in plan if e.kind is FaultKind.HOST_CRASH]
        assert len(crashed) == len(set(crashed))
        assert set(crashed) <= {str(h) for h in HOSTS}

    def test_empty_pools_disable_kinds(self):
        plan = _plan(intensity=20.0, hosts=[], objects=[], sites=["east"])
        kinds = {e.kind for e in plan}
        assert FaultKind.HOST_CRASH not in kinds
        assert FaultKind.OBJECT_CRASH not in kinds
        assert FaultKind.PARTITION not in kinds
        assert kinds <= {FaultKind.LINK_DEGRADE}

    def test_partition_targets_are_distinct_site_pairs(self):
        plan = _plan(intensity=50.0)
        for event in plan:
            if event.kind is FaultKind.PARTITION:
                a, b = event.target.split("|")
                assert a != b
                assert {a, b} <= set(SITES)

    def test_counts_sum_to_len(self):
        plan = _plan(intensity=20.0)
        assert sum(plan.counts().values()) == len(plan)


class TestFaultLog:
    def test_recovery_pairs_with_latest_earlier_loss(self):
        log = FaultLog()
        log.inject(10.0, "object-lost", "O<1.1>")
        log.inject(50.0, "object-crash", "O<1.1>")
        log.observe(70.0, "object-recovered", "O<1.1>")
        assert log.recovery_times() == [("O<1.1>", 20.0)]

    def test_unmatched_recovery_is_dropped(self):
        log = FaultLog()
        log.observe(70.0, "object-recovered", "O<1.1>")
        assert log.recovery_times() == []

    def test_lost_vs_recovered_sets(self):
        log = FaultLog()
        log.inject(1.0, "object-lost", "a")
        log.inject(2.0, "object-crash", "b")
        log.inject(3.0, "host-crash", "7")  # not an object loss
        log.observe(4.0, "object-recovered", "a")
        assert set(log.lost_objects()) == {"a", "b"}
        assert set(log.recovered_objects()) == {"a"}

    def test_summary_and_json_roundtrip(self):
        log = FaultLog()
        log.inject(1.0, "object-lost", "a", "host 2")
        log.observe(5.0, "object-recovered", "a")
        summary = log.summary()
        assert summary["objects_lost"] == 1
        assert summary["objects_recovered"] == 1
        assert summary["recovery_time_mean"] == 4.0
        blob = json.dumps(log.to_json(), sort_keys=True)
        assert "object-recovered" in blob
