"""Property: no request pends forever, whatever the network does.

Under seeded message drops and timed partitions, every request a runtime
sends settles exactly one way -- reply, timeout, delivery failure, or
cancellation -- and nothing is left in any ``_pending`` table once the
kernel drains.  This pins the RuntimeStats reconciliation documented on
:class:`repro.core.runtime.RuntimeStats`.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.faults.driver import ChaosDriver
from repro.faults.log import FaultLog
from repro.faults.plan import FaultPlan
from repro.flow.config import FlowConfig
from repro.metrics.counters import ComponentKind, MetricsRegistry
from repro.net.latency import LinkClass
from repro.system.legion import LegionSystem, SiteSpec
from repro.workloads.apps import CounterImpl, SerialServiceImpl
from repro.workloads.generators import OpenLoopDriver, TrafficDriver


def _all_runtimes(system, clients):
    servers = (
        list(system.host_servers.values())
        + list(system.magistrates.values())
        + list(system.agents.values())
        + list(clients)
    )
    for host_server in system.host_servers.values():
        for entry in host_server.impl.processes.running():
            servers.append(entry.server)
    return [s.runtime for s in servers]


def _reconcile(runtime):
    stats = runtime.stats
    settled = (
        stats.replies_received
        + stats.timeouts
        + stats.delivery_failures
        + stats.cancelled
        + stats.shed
    )
    return stats.requests_sent == settled and not runtime._pending


@settings(
    max_examples=12, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)
@given(
    seed=st.integers(0, 2**16),
    drop_wide=st.floats(0.0, 0.6),
    drop_site=st.floats(0.0, 0.4),
    partition_at=st.one_of(st.none(), st.floats(1.0, 80.0)),
)
def test_every_request_settles(seed, drop_wide, drop_site, partition_at):
    system = LegionSystem.build(
        [SiteSpec("east", hosts=2), SiteSpec("west", hosts=2)], seed=seed
    )
    cls = system.create_class("Counter", factory=CounterImpl)
    bindings = [system.create_instance(cls.loid) for _ in range(3)]
    clients = [
        system.new_client(f"c{i}", site=site)
        for i, site in enumerate(["east", "west", "east"])
    ]

    system.network.drop_probability[LinkClass.WIDE_AREA] = drop_wide
    system.network.drop_probability[LinkClass.SAME_SITE] = drop_site
    if partition_at is not None:
        driver = ChaosDriver(system, FaultPlan(), FaultLog())
        system.kernel.call_later(
            partition_at, lambda: driver.partition("east", "west", duration=60.0)
        )

    rng = system.services.rng.stream("settlement-targets")
    traffic = TrafficDriver(
        system.kernel,
        clients,
        choose_target=lambda _c: bindings[rng.randrange(len(bindings))].loid,
        method="Get",
        calls_per_client=8,
        think_time=5.0,
        timeout=150.0,
    )
    stats_future = traffic.start()
    system.kernel.run()

    stats = stats_future.result()
    assert stats.calls_issued == len(clients) * 8
    assert stats.calls_succeeded + stats.calls_failed == stats.calls_issued

    for runtime in _all_runtimes(system, clients):
        assert _reconcile(runtime), (
            f"{runtime!r} leaked a request: {runtime.stats}"
        )


def test_shed_storm_settles_and_every_shed_ledger_agrees():
    """Overload instead of faults: sheds are settlements, and the three
    shed ledgers (client wire replies, server SHED counters, FaultLog
    incidents) count the same events."""
    system = LegionSystem.build(
        [SiteSpec("main", hosts=2)],
        seed=21,
        flow=FlowConfig(
            capacity=1,
            queue_limit=2,
            service_estimate=2.0,
            admit_kinds=frozenset({ComponentKind.APPLICATION}),
        ),
    )
    system.services.fault_log = FaultLog()
    cls = system.create_class(
        "SerialService", factory=lambda: SerialServiceImpl(service_time=2.0)
    )
    binding = system.create_instance(cls.loid)
    clients = [system.new_client(f"c{i}") for i in range(3)]
    system.reset_measurements()

    driver = OpenLoopDriver(
        system.kernel,
        clients,
        choose_call=lambda _c: (binding.loid, "Work", ()),
        interval=1.0,  # 3 req/ms offered against 0.5 req/ms capacity
        duration=60.0,
        timeout=50.0,
    )
    stats_future = driver.start()
    system.kernel.run()

    stats = stats_future.result()
    assert stats.calls_issued == stats.calls_succeeded + stats.calls_failed

    wire_sheds = sum(c.runtime.stats.shed for c in clients)
    metric_sheds = sum(
        system.services.metrics.snapshot(None, MetricsRegistry.SHED).values()
    )
    log_sheds = sum(
        1 for i in system.services.fault_log.observed if i.kind == "request-shed"
    )
    assert wire_sheds > 0, "the storm must actually overflow admission"
    assert wire_sheds == metric_sheds == log_sheds

    for runtime in _all_runtimes(system, clients):
        assert _reconcile(runtime), (
            f"{runtime!r} leaked a request: {runtime.stats}"
        )
