"""RetryPolicy mechanics: backoff math, counters, coalesced refreshes."""

import random

import pytest

from repro import errors
from repro.core.runtime import DEFAULT_RETRY_POLICY, RetryPolicy
from repro.system.legion import LegionSystem, SiteSpec
from repro.workloads.apps import CounterImpl


@pytest.fixture
def legion_pair():
    system = LegionSystem.build(
        [SiteSpec("east", hosts=2), SiteSpec("west", hosts=2)], seed=17
    )
    cls = system.create_class("Counter", factory=CounterImpl)
    return system, cls


class TestBackoffMath:
    def test_first_attempt_never_waits(self):
        policy = RetryPolicy(base_backoff=10.0)
        assert policy.backoff_delay(1, random.Random(0)) == 0.0

    def test_exponential_growth_and_cap(self):
        policy = RetryPolicy(base_backoff=10.0, backoff_factor=2.0, max_backoff=35.0)
        rng = random.Random(0)
        assert policy.backoff_delay(2, rng) == 10.0
        assert policy.backoff_delay(3, rng) == 20.0
        assert policy.backoff_delay(4, rng) == 35.0  # capped, not 40
        assert policy.backoff_delay(9, rng) == 35.0

    def test_zero_base_disables_backoff(self):
        policy = RetryPolicy(base_backoff=0.0)
        assert policy.backoff_delay(5, random.Random(0)) == 0.0

    def test_jitter_stays_within_fraction_and_is_seeded(self):
        policy = RetryPolicy(base_backoff=100.0, jitter=0.25)
        delays = [policy.backoff_delay(2, random.Random(s)) for s in range(30)]
        assert all(75.0 <= d <= 125.0 for d in delays)
        again = [policy.backoff_delay(2, random.Random(s)) for s in range(30)]
        assert delays == again  # same seeds, same jitter

    def test_default_policy_is_plain_four_attempts(self):
        assert DEFAULT_RETRY_POLICY.max_attempts == 4
        assert DEFAULT_RETRY_POLICY.base_backoff == 0.0
        assert not DEFAULT_RETRY_POLICY.retry_partitions
        assert not DEFAULT_RETRY_POLICY.retry_resolution_failures


class TestRetryCounters:
    def test_clean_call_is_one_attempt_no_rebind(self, legion_pair):
        system, cls = legion_pair
        binding = system.create_instance(cls.loid)
        client = system.new_client("clean")
        client.runtime.stats.reset()
        system.call(binding.loid, "Ping", client=client)
        stats = client.runtime.stats
        assert stats.attempts == stats.invocations
        assert stats.rebinds == 0
        assert stats.budget_exhausted == 0

    def test_stale_binding_counts_a_rebind(self, legion_pair):
        system, cls = legion_pair
        binding = system.create_instance(cls.loid)
        client = system.new_client("rebinder")
        system.call(binding.loid, "Ping", client=client)  # warm cache
        row = system.call(cls.loid, "GetRow", binding.loid)
        system.call(row.current_magistrates[0], "Deactivate", binding.loid)
        client.runtime.stats.reset()
        system.call(binding.loid, "Ping", client=client)
        stats = client.runtime.stats
        assert stats.rebinds == 1
        assert stats.refreshes == 1
        assert stats.attempts == 2  # dead address, then the fresh one

    def test_budget_exhaustion_is_counted_and_bounded(self, legion_pair):
        system, cls = legion_pair
        binding = system.create_instance(cls.loid)
        client = system.new_client("budgeted")
        system.call(binding.loid, "Ping", client=client)
        client.runtime.retry_policy = RetryPolicy(
            max_attempts=50,
            base_backoff=100.0,
            max_backoff=100.0,
            budget=250.0,
            retry_resolution_failures=True,
        )
        client.runtime.default_timeout = 40.0  # bounds the refresh legs too
        # Black-hole every link: calls time out, retries burn the budget.
        from repro.net.latency import LinkClass

        for link in LinkClass:
            system.network.drop_probability[link] = 1.0
        started = system.kernel.now
        with pytest.raises(errors.BindingNotFound):
            system.call(binding.loid, "Ping", client=client, timeout=40.0)
        assert client.runtime.stats.budget_exhausted == 1
        # The budget bounds the whole invoke, not any single attempt: two
        # 40ms attempts + refreshes + one backoff fit; a 50-attempt loop
        # would not.
        assert system.kernel.now - started <= 500.0

    def test_traced_retry_chain_records_backoffs(self, legion_pair):
        system, cls = legion_pair
        binding = system.create_instance(cls.loid)
        client = system.new_client("traced")
        system.call(binding.loid, "Ping", client=client)
        row = system.call(cls.loid, "GetRow", binding.loid)
        system.call(row.current_magistrates[0], "Deactivate", binding.loid)
        client.runtime.retry_policy = RetryPolicy(
            max_attempts=6, base_backoff=15.0, retry_resolution_failures=True
        )
        tracer = system.enable_tracing()
        system.call(binding.loid, "Ping", client=client)
        retries = [s for s in tracer.spans if s.name == "retry-backoff"]
        assert retries, "patient retry after a stale binding must be traced"
        invokes = [s for s in tracer.spans if s.name == "invoke Ping"]
        assert any((s.annotations or {}).get("attempts", 1) > 1 for s in invokes)


class TestRefreshCoalescing:
    def test_concurrent_invokes_share_one_refresh(self, legion_pair):
        """N in-flight calls to one dead address: exactly one GetBinding."""
        system, cls = legion_pair
        binding = system.create_instance(cls.loid)
        client = system.new_client("storm")
        system.call(binding.loid, "Get", client=client)  # warm cache
        row = system.call(cls.loid, "GetRow", binding.loid)
        system.call(row.current_magistrates[0], "Deactivate", binding.loid)
        client.runtime.stats.reset()
        futures = [
            system.spawn(client.runtime.invoke(binding.loid, "Get"))
            for _ in range(8)
        ]
        system.kernel.run()
        assert all(f.result() == 0 for f in futures)
        stats = client.runtime.stats
        assert stats.stale_detected == 8  # everyone hit the dead address
        assert stats.refreshes == 1  # ...but only one refresh went out
        assert stats.rebinds == 8  # and everyone got the fresh binding

    def test_failed_refresh_fails_all_waiters_once(self, legion_pair):
        system, cls = legion_pair
        binding = system.create_instance(cls.loid)
        client = system.new_client("doomed")
        system.call(binding.loid, "Get", client=client)
        system.call(cls.loid, "Delete", binding.loid)
        client.runtime.stats.reset()
        futures = [
            system.spawn(client.runtime.invoke(binding.loid, "Get"))
            for _ in range(5)
        ]
        system.kernel.run()
        for fut in futures:
            with pytest.raises(errors.LegionError):
                fut.result()
        # Deletion gossip may pre-clean some caches; what matters is that
        # concurrent losers never multiply refresh traffic.
        assert client.runtime.stats.refreshes <= 1
