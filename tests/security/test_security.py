"""Unit tests for the security hooks (paper 2.4)."""

import pytest

from repro.naming.loid import LOID
from repro.security.environment import CallEnvironment
from repro.security.identity import Credentials, verify_identity
from repro.security.mayi import (
    ACLPolicy,
    AllowAll,
    CompositePolicy,
    DenyAll,
    MethodFilterPolicy,
    PredicatePolicy,
    TrustSetPolicy,
)


def actor(n):
    return LOID.for_instance(30, n, secret=5)


class TestCallEnvironment:
    def test_originating_plays_all_roles(self):
        env = CallEnvironment.originating(actor(1))
        assert env.responsible_agent == actor(1)
        assert env.security_agent == actor(1)
        assert env.calling_agent == actor(1)

    def test_originating_with_security_agent(self):
        env = CallEnvironment.originating(actor(1), security_agent=actor(2))
        assert env.security_agent == actor(2)

    def test_forwarding_preserves_ra_and_sa(self):
        env = CallEnvironment.originating(actor(1)).forwarded_by(actor(2))
        assert env.responsible_agent == actor(1)
        assert env.calling_agent == actor(2)
        deeper = env.forwarded_by(actor(3))
        assert deeper.responsible_agent == actor(1)
        assert deeper.calling_agent == actor(3)

    def test_rerooting_changes_ra(self):
        env = CallEnvironment.originating(actor(1)).rerooted(actor(9), actor(2))
        assert env.responsible_agent == actor(9)
        assert env.calling_agent == actor(2)


class TestIdentity:
    def test_genuine_loid_verifies(self):
        loid = LOID.for_instance(30, 1, secret=5)
        assert verify_identity(loid, 5)
        assert not verify_identity(loid, 6)

    def test_iam_challenge_response(self):
        loid = LOID.for_instance(30, 1, secret=5)
        creds = Credentials.respond(loid, challenge=777, system_secret=5)
        assert creds.verify(777, 5)
        assert not creds.verify(778, 5)  # replayed for another challenge
        assert not creds.verify(777, 6)  # wrong system

    def test_forged_loid_fails_even_with_matching_token(self):
        forged = LOID(30, 1, public_key=123)
        creds = Credentials.respond(forged, 777, 5)
        assert not creds.verify(777, 5)


class TestMayIPolicies:
    def env(self, ra=1, ca=2):
        return CallEnvironment(
            responsible_agent=actor(ra),
            security_agent=actor(ra),
            calling_agent=actor(ca),
        )

    def test_allow_and_deny(self):
        assert AllowAll().may_i("Anything", self.env())
        assert not DenyAll().may_i("Anything", self.env())

    def test_acl_checks_calling_agent(self):
        policy = ACLPolicy()
        policy.allow("Read", actor(2))
        assert policy.may_i("Read", self.env(ca=2))
        assert not policy.may_i("Read", self.env(ca=3))
        assert not policy.may_i("Write", self.env(ca=2))  # default deny

    def test_acl_default_allow(self):
        policy = ACLPolicy(default=True)
        assert policy.may_i("Unlisted", self.env())

    def test_trust_set_checks_responsible_agent(self):
        policy = TrustSetPolicy()
        policy.trust(actor(1))
        assert policy.may_i("X", self.env(ra=1, ca=99))
        assert not policy.may_i("X", self.env(ra=2, ca=1))
        policy.revoke(actor(1))
        assert not policy.may_i("X", self.env(ra=1))

    def test_trust_set_defence_in_depth(self):
        policy = TrustSetPolicy(check_calling_agent=True)
        policy.trust(actor(1))
        assert not policy.may_i("X", self.env(ra=1, ca=2))
        policy.trust(actor(2))
        assert policy.may_i("X", self.env(ra=1, ca=2))

    def test_method_filter(self):
        policy = MethodFilterPolicy(frozenset({"Get"}))
        assert policy.may_i("Get", self.env())
        assert not policy.may_i("Put", self.env())

    def test_predicate(self):
        policy = PredicatePolicy(lambda method, env: method.startswith("Get"))
        assert policy.may_i("GetState", self.env())
        assert not policy.may_i("SetState", self.env())

    def test_composition_operators(self):
        trusted = TrustSetPolicy()
        trusted.trust(actor(1))
        reads = MethodFilterPolicy(frozenset({"Get"}))
        both = trusted & reads
        either = trusted | reads
        assert both.may_i("Get", self.env(ra=1))
        assert not both.may_i("Put", self.env(ra=1))
        assert either.may_i("Put", self.env(ra=1))
        assert either.may_i("Get", self.env(ra=9))
        assert not either.may_i("Put", self.env(ra=9))

    def test_composite_mode_validation(self):
        with pytest.raises(ValueError):
            CompositePolicy([AllowAll()], mode="xor")
