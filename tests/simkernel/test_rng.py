"""Unit tests for named RNG streams."""

from repro.simkernel.rng import RngStreams


class TestRngStreams:
    def test_same_seed_same_stream_reproduces(self):
        a = RngStreams(5).stream("x")
        b = RngStreams(5).stream("x")
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_streams_are_independent(self):
        streams = RngStreams(5)
        x = streams.stream("x")
        y = streams.stream("y")
        xs = [x.random() for _ in range(5)]
        # Drawing from y must not perturb x's future values.
        streams2 = RngStreams(5)
        x2 = streams2.stream("x")
        _ = [streams2.stream("y").random() for _ in range(100)]
        xs_head = [x2.random() for _ in range(5)]
        assert xs == xs_head

    def test_different_names_differ(self):
        streams = RngStreams(5)
        assert streams.stream("a").random() != streams.stream("b").random()

    def test_different_seeds_differ(self):
        assert RngStreams(1).stream("x").random() != RngStreams(2).stream("x").random()

    def test_stream_identity_cached(self):
        streams = RngStreams(0)
        assert streams.stream("s") is streams.stream("s")

    def test_numpy_stream_reproducible(self):
        a = RngStreams(9).numpy_stream("n").random(4)
        b = RngStreams(9).numpy_stream("n").random(4)
        assert (a == b).all()

    def test_fork_is_deterministic_and_distinct(self):
        parent = RngStreams(3)
        child1 = parent.fork("c")
        child2 = RngStreams(3).fork("c")
        assert child1.stream("x").random() == child2.stream("x").random()
        assert parent.stream("x").random() != RngStreams(3).fork("other").stream("x").random()
