"""Unit tests for the discrete-event kernel and generator processes."""

import pytest

from repro.errors import ProcessKilled, SimulationDeadlock, SimulationError
from repro.simkernel.futures import SimFuture
from repro.simkernel.kernel import SimKernel, Timeout


class TestScheduling:
    def test_events_run_in_time_order(self, kernel):
        order = []
        kernel.schedule(5.0, lambda: order.append("late"))
        kernel.schedule(1.0, lambda: order.append("early"))
        kernel.run()
        assert order == ["early", "late"]
        assert kernel.now == 5.0

    def test_equal_times_run_in_schedule_order(self, kernel):
        order = []
        for i in range(5):
            kernel.schedule(1.0, lambda i=i: order.append(i))
        kernel.run()
        assert order == [0, 1, 2, 3, 4]

    def test_negative_delay_rejected(self, kernel):
        with pytest.raises(SimulationError):
            kernel.schedule(-0.1, lambda: None)

    def test_cancellation(self, kernel):
        hits = []
        handle = kernel.schedule(1.0, lambda: hits.append("x"))
        handle.cancel()
        kernel.run()
        assert hits == []

    def test_run_until_stops_the_clock(self, kernel):
        hits = []
        kernel.schedule(10.0, lambda: hits.append("x"))
        kernel.run(until=5.0)
        assert kernel.now == 5.0
        assert hits == []
        kernel.run()
        assert hits == ["x"]

    def test_schedule_at_absolute_time(self, kernel):
        times = []
        kernel.schedule_at(7.0, lambda: times.append(kernel.now))
        kernel.run()
        assert times == [7.0]

    def test_max_events_guard(self, kernel):
        def rearm():
            kernel.schedule(1.0, rearm)

        kernel.schedule(1.0, rearm)
        with pytest.raises(SimulationError):
            kernel.run(max_events=100)


class TestProcesses:
    def test_timeout_advances_clock(self, kernel):
        def proc():
            yield Timeout(3.0)
            return kernel.now

        fut = kernel.spawn(proc())
        kernel.run()
        assert fut.result() == 3.0

    def test_return_value_becomes_future_result(self, kernel):
        def proc():
            yield Timeout(1.0)
            return "done"

        assert kernel.run_until_complete(kernel.spawn(proc())) == "done"

    def test_yielding_future_suspends_until_resolved(self, kernel):
        gate = SimFuture("gate")

        def proc():
            value = yield gate
            return value * 2

        fut = kernel.spawn(proc())
        kernel.schedule(5.0, lambda: gate.set_result(21))
        kernel.run()
        assert fut.result() == 42

    def test_failed_future_raises_inside_process(self, kernel):
        gate = SimFuture()

        def proc():
            try:
                yield gate
            except ValueError as exc:
                return f"caught {exc}"

        fut = kernel.spawn(proc())
        kernel.schedule(1.0, lambda: gate.set_exception(ValueError("inner")))
        kernel.run()
        assert fut.result() == "caught inner"

    def test_uncaught_exception_fails_process_future(self, kernel):
        def proc():
            yield Timeout(1.0)
            raise RuntimeError("unhandled")

        fut = kernel.spawn(proc())
        kernel.run()
        assert fut.failed()
        with pytest.raises(RuntimeError):
            fut.result()

    def test_child_generator_awaited(self, kernel):
        def child():
            yield Timeout(2.0)
            return 10

        def parent():
            value = yield child()
            return value + 1

        assert kernel.run_until_complete(kernel.spawn(parent())) == 11

    def test_yield_none_reschedules(self, kernel):
        steps = []

        def proc():
            steps.append("a")
            yield None
            steps.append("b")

        kernel.spawn(proc())
        kernel.run()
        assert steps == ["a", "b"]

    def test_unsupported_yield_fails(self, kernel):
        def proc():
            yield 12345

        fut = kernel.spawn(proc())
        kernel.run()
        assert fut.failed()
        assert isinstance(fut.exception(), SimulationError)

    def test_spawn_requires_generator(self, kernel):
        with pytest.raises(SimulationError):
            kernel.spawn(lambda: None)  # type: ignore[arg-type]

    def test_kill_process(self, kernel):
        cleaned = []

        def proc():
            try:
                yield Timeout(100.0)
            except ProcessKilled:
                cleaned.append(True)
                raise

        handle = kernel.spawn_process(proc())
        kernel.schedule(1.0, lambda: handle.kill("stop"))
        kernel.run()
        assert cleaned == [True]
        assert handle.future.failed()

    def test_deadlock_detected(self, kernel):
        never = SimFuture()

        def proc():
            yield never

        fut = kernel.spawn(proc())
        with pytest.raises(SimulationDeadlock):
            kernel.run_until_complete(fut)

    def test_concurrent_processes_interleave_by_time(self, kernel):
        log = []

        def proc(name, delay):
            yield Timeout(delay)
            log.append(name)

        kernel.spawn(proc("slow", 5.0))
        kernel.spawn(proc("fast", 1.0))
        kernel.run()
        assert log == ["fast", "slow"]

    def test_determinism_across_runs(self):
        def build_and_run():
            k = SimKernel()
            log = []

            def proc(name, delay):
                yield Timeout(delay)
                log.append((name, k.now))

            for i in range(10):
                k.spawn(proc(f"p{i}", (i * 7) % 5 + 0.5))
            k.run()
            return log

        assert build_and_run() == build_and_run()


class TestSleep:
    def test_sleep_future(self, kernel):
        fut = kernel.sleep(4.0)
        kernel.run()
        assert fut.done()
        assert kernel.now == 4.0
