"""Unit tests for SimFuture and its combinators."""

import pytest

from repro.errors import FutureError
from repro.simkernel.futures import (
    SimFuture,
    any_of,
    completed,
    failed,
    gather,
    k_of,
)


class TestSimFuture:
    def test_pending_result_raises(self):
        fut = SimFuture("x")
        assert not fut.done()
        with pytest.raises(FutureError):
            fut.result()

    def test_set_result(self):
        fut = SimFuture()
        fut.set_result(42)
        assert fut.done()
        assert not fut.failed()
        assert fut.result() == 42

    def test_set_exception_reraises(self):
        fut = SimFuture()
        fut.set_exception(ValueError("boom"))
        assert fut.done()
        assert fut.failed()
        with pytest.raises(ValueError, match="boom"):
            fut.result()

    def test_double_resolution_rejected(self):
        fut = SimFuture()
        fut.set_result(1)
        with pytest.raises(FutureError):
            fut.set_result(2)
        with pytest.raises(FutureError):
            fut.set_exception(ValueError())

    def test_set_exception_requires_exception(self):
        fut = SimFuture()
        with pytest.raises(FutureError):
            fut.set_exception("not an exception")  # type: ignore[arg-type]

    def test_callback_after_resolution_runs_immediately(self):
        fut = completed(5)
        seen = []
        fut.add_done_callback(lambda f: seen.append(f.result()))
        assert seen == [5]

    def test_callbacks_run_in_registration_order(self):
        fut = SimFuture()
        order = []
        fut.add_done_callback(lambda f: order.append("a"))
        fut.add_done_callback(lambda f: order.append("b"))
        fut.set_result(None)
        assert order == ["a", "b"]

    def test_then_chains_value(self):
        out = completed(3).then(lambda v: v * 2)
        assert out.result() == 6

    def test_then_propagates_failure(self):
        out = failed(KeyError("k")).then(lambda v: v)
        assert out.failed()
        assert isinstance(out.exception(), KeyError)

    def test_then_captures_mapper_exception(self):
        out = completed(1).then(lambda v: 1 / 0)
        assert out.failed()
        assert isinstance(out.exception(), ZeroDivisionError)


class TestGather:
    def test_empty(self):
        assert gather([]).result() == []

    def test_order_preserved_regardless_of_resolution_order(self):
        futs = [SimFuture(str(i)) for i in range(3)]
        out = gather(futs)
        futs[2].set_result("c")
        futs[0].set_result("a")
        futs[1].set_result("b")
        assert out.result() == ["a", "b", "c"]

    def test_first_failure_fails_gather(self):
        futs = [SimFuture(), SimFuture()]
        out = gather(futs)
        futs[1].set_exception(RuntimeError("dead"))
        assert out.failed()
        futs[0].set_result(1)  # late success is ignored
        with pytest.raises(RuntimeError):
            out.result()


class TestAnyOf:
    def test_first_success_wins(self):
        futs = [SimFuture(), SimFuture(), SimFuture()]
        out = any_of(futs)
        futs[1].set_result("won")
        assert out.result() == (1, "won")

    def test_failures_tolerated_until_success(self):
        futs = [SimFuture(), SimFuture()]
        out = any_of(futs)
        futs[0].set_exception(IOError("a"))
        assert not out.done()
        futs[1].set_result("ok")
        assert out.result() == (1, "ok")

    def test_all_failures_fail(self):
        futs = [SimFuture(), SimFuture()]
        out = any_of(futs)
        futs[0].set_exception(IOError("a"))
        futs[1].set_exception(IOError("b"))
        assert out.failed()

    def test_empty_fails(self):
        assert any_of([]).failed()


class TestKOf:
    def test_k_successes_resolve(self):
        futs = [SimFuture() for _ in range(4)]
        out = k_of(futs, 2)
        futs[3].set_result("d")
        assert not out.done()
        futs[0].set_result("a")
        assert out.result() == [(3, "d"), (0, "a")]

    def test_too_many_failures_fail(self):
        futs = [SimFuture() for _ in range(3)]
        out = k_of(futs, 2)
        futs[0].set_exception(IOError())
        assert not out.done()
        futs[1].set_exception(IOError())
        assert out.failed()

    def test_k_zero_trivially_done(self):
        assert k_of([SimFuture()], 0).result() == []

    def test_k_exceeding_inputs_fails_immediately(self):
        assert k_of([SimFuture()], 2).failed()
