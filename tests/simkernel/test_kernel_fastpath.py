"""Fast-path kernel behaviour: cancellation accounting, heap compaction,
and the future-resume trampoline.

These pin down the invariants the tuple-heap/trampoline redesign must
keep: ``pending_events`` never counts cancelled placeholders, compaction
is invisible to code running inside the event loop, and trampolined
resumes preserve event order and the ``events_executed`` count.
"""

import pytest

from repro.errors import SimulationError
from repro.simkernel.futures import SimFuture, completed
from repro.simkernel.kernel import SimKernel, Timeout


class TestCancellationAccounting:
    def test_pending_events_excludes_cancelled(self):
        kernel = SimKernel()
        handles = [kernel.schedule(1.0, lambda: None) for _ in range(3)]
        assert kernel.pending_events == 3
        handles[0].cancel()
        assert kernel.pending_events == 2
        handles[0].cancel()  # idempotent
        assert kernel.pending_events == 2

    def test_cancel_after_run_does_not_go_negative(self):
        kernel = SimKernel()
        handle = kernel.schedule(1.0, lambda: None)
        kernel.run()
        handle.cancel()  # stray seq: the event already ran
        assert kernel.pending_events == 0

    def test_cancelled_event_never_runs(self):
        kernel = SimKernel()
        ran = []
        handle = kernel.schedule(1.0, ran.append, "a")
        kernel.schedule(2.0, ran.append, "b")
        handle.cancel()
        kernel.run()
        assert ran == ["b"]

    def test_run_until_stops_on_cancelled_only_queue(self):
        kernel = SimKernel()
        handle = kernel.schedule(5.0, lambda: None)
        handle.cancel()
        kernel.run(until=10.0)
        assert kernel.now == 10.0
        assert kernel.events_executed == 0


class TestCompaction:
    def test_mass_cancellation_compacts_heap(self):
        kernel = SimKernel()
        keep = kernel.schedule(500.0, lambda: None)
        handles = [kernel.schedule(float(i), lambda: None) for i in range(200)]
        for h in handles:
            h.cancel()
        # Past the threshold the bulk of the placeholders is swept out
        # (a sub-threshold tail may linger until the next sweep).
        assert len(kernel._queue) < 100
        assert kernel.pending_events == 1
        keep.cancel()
        kernel.run()
        assert kernel.events_executed == 0

    def test_compaction_inside_callback_keeps_later_events(self):
        """Regression: compacting used to rebind the queue list, stranding
        the run loop's local alias on a stale copy -- events scheduled
        after the compaction were silently lost (deadlocking E2's
        bootstrap at scale).  Compaction must mutate the heap in place.
        """
        kernel = SimKernel()
        ran = []
        handles = [kernel.schedule(10.0, lambda: None) for _ in range(200)]

        def cancel_then_schedule():
            for h in handles:
                h.cancel()  # triggers _compact mid-run
            kernel.schedule(1.0, ran.append, "after-compact")

        kernel.schedule(0.0, cancel_then_schedule)
        kernel.run()
        assert ran == ["after-compact"]

    def test_compaction_preserves_order(self):
        kernel = SimKernel()
        ran = []
        doomed = [kernel.schedule(50.0, lambda: None) for _ in range(150)]
        for i in range(5):
            kernel.schedule(float(i + 1), ran.append, i)
        for h in doomed:
            h.cancel()
        kernel.run()
        assert ran == [0, 1, 2, 3, 4]


class TestTrampoline:
    def test_future_resume_counts_as_event(self):
        """Whether a resume trampolines or goes through the heap must not
        change ``events_executed`` (E10 reports this number)."""
        kernel = SimKernel()

        def waiter():
            fut = SimFuture("w")
            kernel.schedule(1.0, fut.set_result, 42)
            value = yield fut
            return value

        fut = kernel.spawn(waiter())
        kernel.run()
        assert fut.result() == 42
        # spawn step + set_result event + trampolined resume = 3.
        assert kernel.events_executed == 3

    def test_resume_order_is_fifo(self):
        kernel = SimKernel()
        order = []
        gate = SimFuture("gate")

        def waiter(tag):
            yield gate
            order.append(tag)

        for tag in ("a", "b", "c"):
            kernel.spawn(waiter(tag))
        kernel.schedule(1.0, gate.set_result, None)
        kernel.run()
        assert order == ["a", "b", "c"]

    def test_resume_defers_to_due_events(self):
        """A resume may not jump ahead of an event due at the same instant."""
        kernel = SimKernel()
        order = []
        gate = SimFuture("gate")

        def waiter():
            yield gate
            order.append("resumed")

        kernel.spawn(waiter())

        def resolve():
            gate.set_result(None)

        kernel.schedule(1.0, resolve)
        kernel.schedule(1.0, order.append, "same-instant")
        kernel.run()
        assert order == ["same-instant", "resumed"]

    def test_trampoline_limit_spills_to_heap(self, monkeypatch):
        monkeypatch.setattr(SimKernel, "TRAMPOLINE_LIMIT", 8)
        kernel = SimKernel()

        def chain(n):
            for _ in range(n):
                yield completed(None)
            return "done"

        fut = kernel.spawn(chain(50))
        kernel.run()
        assert fut.result() == "done"

    def test_spilled_resumes_visible_to_max_events(self, monkeypatch):
        monkeypatch.setattr(SimKernel, "TRAMPOLINE_LIMIT", 2)
        kernel = SimKernel()

        def forever():
            while True:
                yield completed(None)

        kernel.spawn(forever())
        with pytest.raises(SimulationError, match="max_events"):
            kernel.run(max_events=100)

    def test_trampoline_and_heap_paths_agree_on_sim_time(self):
        """Same workload, resumed via trampoline, must land on the same
        simulated clock as pure-timeout scheduling."""
        kernel = SimKernel()

        def worker():
            for _ in range(10):
                fut = SimFuture()
                kernel.schedule(1.0, fut.set_result, None)
                yield fut
                yield Timeout(0.5)
            return kernel.now

        fut = kernel.spawn(worker())
        kernel.run()
        assert fut.result() == pytest.approx(15.0)
        assert kernel.now == pytest.approx(15.0)
