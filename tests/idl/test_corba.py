"""Tests for the CORBA IDL front-end (the paper's second IDL)."""

import pytest

from repro.errors import InterfaceError
from repro.idl.corba import parse_corba_interface
from repro.idl.parser import parse_interface


class TestCorbaParsing:
    def test_basic_operations(self):
        iface = parse_corba_interface(
            """
            interface Counter {
              long increment(in long amount);
              long get();
              void reset();
            };
            """
        )
        assert iface.name == "Counter"
        inc = iface.find("increment", 1)
        assert inc.returns == "int"
        assert inc.parameters[0].type_name == "int"
        assert iface.find("reset", 0).returns is None

    def test_type_normalisation(self):
        iface = parse_corba_interface(
            """
            interface Types {
              double ratio(in float x);
              boolean check(in string name);
              unsigned long count(in unsigned short n);
              octet raw(in any blob);
            };
            """
        )
        assert iface.find("ratio", 1).returns == "float"
        assert iface.find("check", 1).returns == "bool"
        count = iface.find("count", 1)
        assert count.returns == "int"
        assert count.parameters[0].type_name == "int"
        assert iface.find("raw", 1).returns == "octet"

    def test_direction_keywords(self):
        iface = parse_corba_interface(
            "interface D { void f(in long a, out long b, inout long c); }"
        )
        params = iface.find("f", 3).parameters
        assert params[0].name == "a"
        assert params[1].name == "out_b"
        assert params[2].name == "inout_c"

    def test_attributes(self):
        iface = parse_corba_interface(
            """
            interface Attrs {
              readonly attribute long size;
              attribute string label;
            };
            """
        )
        assert iface.find("GetSize", 0).returns == "int"
        assert iface.find("GetLabel", 0).returns == "string"
        setter = iface.find("SetLabel", 1)
        assert setter.returns is None
        assert not iface.has_method("SetSize")  # readonly

    def test_comments_both_styles(self):
        iface = parse_corba_interface(
            """
            interface C { // line comment
              /* block
                 comment */
              void f();
            };
            """
        )
        assert iface.has_method("f")

    def test_user_defined_types_pass_through(self):
        iface = parse_corba_interface(
            "interface U { binding GetBinding(in LOID target); }"
        )
        sig = iface.find("GetBinding", 1)
        assert sig.returns == "binding"
        assert sig.parameters[0].type_name == "LOID"

    def test_syntax_errors(self):
        with pytest.raises(InterfaceError):
            parse_corba_interface("interface X { void f(in void a); }")
        with pytest.raises(InterfaceError):
            parse_corba_interface("interface X { long f(; }")
        with pytest.raises(InterfaceError):
            parse_corba_interface("module X {}")

    def test_two_front_ends_one_interface(self):
        """The paper's point: different IDLs, the same object model."""
        corba = parse_corba_interface(
            """
            interface Store {
              void put(in string key, in any value);
              any get(in string key);
            };
            """
        )
        mpl = parse_interface(
            "interface Store { put(string key, any value); any get(string key); }"
        )
        assert corba.equivalent_to(mpl)
