"""Unit tests for the IDL: signatures, interfaces, parser (paper section 2)."""

import pytest

from repro.errors import InterfaceError
from repro.idl.interface import Interface
from repro.idl.parser import parse_interface, parse_signature
from repro.idl.signature import MethodSignature, Parameter


class TestSignature:
    def test_simple_construction(self):
        sig = MethodSignature.simple("GetBinding", "LOID", returns="binding")
        assert sig.arity == 1
        assert sig.key == ("GetBinding", ("LOID",))

    def test_identifier_validation(self):
        with pytest.raises(InterfaceError):
            MethodSignature(name="1bad")
        with pytest.raises(InterfaceError):
            Parameter(type_name="has space")

    def test_overloads_have_distinct_keys(self):
        one = MethodSignature.simple("Activate", "LOID", returns="binding")
        two = MethodSignature.simple("Activate", "LOID", "LOID", returns="binding")
        assert one.key != two.key

    def test_compatibility(self):
        a = MethodSignature.simple("F", "int", returns="int")
        b = MethodSignature.simple("F", "int", returns="int")
        c = MethodSignature.simple("F", "int", returns="string")
        assert a.compatible_with(b)
        assert not a.compatible_with(c)

    def test_str_roundtrips_through_parser(self):
        sig = MethodSignature.simple("Activate", "LOID", "LOID", returns="binding")
        assert parse_signature(str(sig)) == sig


class TestParser:
    def test_paper_signatures(self):
        # Signatures exactly as the paper writes them.
        assert parse_signature("binding GetBinding(LOID)").returns == "binding"
        assert parse_signature("Deactivate(LOID)").returns is None
        sig = parse_signature("binding Activate(LOID, LOID)")
        assert sig.arity == 2

    def test_named_parameters(self):
        sig = parse_signature("int Add(int amount)")
        assert sig.parameters[0].name == "amount"

    def test_no_params(self):
        assert parse_signature("state GetState()").arity == 0

    def test_comments_skipped(self):
        iface = parse_interface(
            """
            interface Host {  // the paper's host object
              address Activate(opr);  // start a process
              bytes Deactivate(LOID);
            }
            """
        )
        assert len(iface) == 2

    def test_syntax_errors(self):
        with pytest.raises(InterfaceError):
            parse_signature("binding GetBinding(LOID")  # unclosed
        with pytest.raises(InterfaceError):
            parse_signature("binding GetBinding(LOID) extra")
        with pytest.raises(InterfaceError):
            parse_interface("interface X { ;; }")
        with pytest.raises(InterfaceError):
            parse_interface("interfaze X {}")

    def test_describe_reparses(self):
        iface = parse_interface(
            "interface M { binding Activate(LOID); Deactivate(LOID); }"
        )
        again = parse_interface(iface.describe())
        assert again == iface


class TestInterface:
    def make(self):
        return parse_interface(
            """
            interface Magistrate {
              binding Activate(LOID);
              binding Activate(LOID, LOID);
              Deactivate(LOID);
              Delete(LOID);
            }
            """
        )

    def test_find_disambiguates_by_arity(self):
        iface = self.make()
        assert iface.find("Activate", 1).arity == 1
        assert iface.find("Activate", 2).arity == 2
        with pytest.raises(InterfaceError):
            iface.find("Activate")  # ambiguous without arity

    def test_find_missing_is_none(self):
        assert self.make().find("Nope") is None

    def test_has_method_and_contains(self):
        iface = self.make()
        assert iface.has_method("Delete")
        assert "Deactivate" in iface
        assert "Nope" not in iface

    def test_conflicting_returns_rejected(self):
        with pytest.raises(InterfaceError):
            Interface(
                [
                    MethodSignature.simple("F", "int", returns="int"),
                    MethodSignature.simple("F", "int", returns="string"),
                ]
            )

    def test_merge_unions_and_coalesces(self):
        a = Interface([MethodSignature.simple("F", returns="int")])
        b = Interface(
            [
                MethodSignature.simple("F", returns="int"),
                MethodSignature.simple("G"),
            ]
        )
        merged = a.merged_with(b)
        assert len(merged) == 2

    def test_merge_conflict_raises(self):
        a = Interface([MethodSignature.simple("F", returns="int")])
        b = Interface([MethodSignature.simple("F", returns="string")])
        with pytest.raises(InterfaceError):
            a.merged_with(b)

    def test_conformance_is_superset_semantics(self):
        small = Interface([MethodSignature.simple("F", returns="int")])
        big = small.merged_with(Interface([MethodSignature.simple("G")]))
        assert big.conforms_to(small)
        assert not small.conforms_to(big)
        assert not big.equivalent_to(small)
        assert big.equivalent_to(big)

    def test_missing_from(self):
        small = Interface([MethodSignature.simple("F", returns="int")])
        big = small.merged_with(Interface([MethodSignature.simple("G")]))
        missing = small.missing_from(big)
        assert [m.name for m in missing] == ["G"]

    def test_restricted_to(self):
        iface = self.make()
        only = iface.restricted_to(["Delete"])
        assert only.names() == ("Delete",)

    def test_equality_and_hash(self):
        a = self.make()
        b = self.make()
        assert a == b
        assert hash(a) == hash(b)
