"""Crashed processes: ghost entries, reaping, and same-LOID reactivation.

The Host Object's charter includes "reaping objects, and reporting object
exceptions" (section 2.3).  A crashed process leaves a *ghost* entry --
still in the process table, endpoint gone -- until Reap collects it and
reports the exception to the magistrate.  Reactivation of the same LOID
must work both after a reap (clean table) and before one (the ghost must
not block ``ProcessTable.add``).
"""

import pytest

from repro.errors import HostError
from repro.jurisdiction.magistrate import ObjectState


def _crash(system, binding):
    """Crash ``binding``'s process in place; returns (host_id, server)."""
    for host_id, server in system.host_servers.items():
        entry = server.impl.processes.find(binding.loid)
        if entry is not None and not entry.crashed:
            server.impl.crash_object(binding.loid, "induced fault")
            return host_id, server
    raise AssertionError("instance is not running anywhere")


def _magistrate(system, cls, binding):
    row = system.call(cls.loid, "GetRow", binding.loid)
    return row.current_magistrates[0]


class TestGhostEntries:
    def test_crash_leaves_ghost_until_reaped(self, fresh_legion):
        system, cls = fresh_legion
        binding = system.create_instance(cls.loid)
        host_id, server = _crash(system, binding)
        entry = server.impl.processes.find(binding.loid)
        assert entry is not None and entry.crashed
        assert entry.exception == "induced fault"
        assert not system.network.is_registered(entry.server.address.elements[0])
        assert not system.call(server.loid, "HasProcess", binding.loid)
        # The ghost still counts toward the table but not toward load.
        assert binding.loid in server.impl.processes
        assert entry not in server.impl.processes.running()

    def test_reap_clears_table_and_reports_exception(self, fresh_legion):
        system, cls = fresh_legion
        binding = system.create_instance(cls.loid)
        magistrate = _magistrate(system, cls, binding)
        system.call(magistrate, "Checkpoint", binding.loid)
        host_id, server = _crash(system, binding)
        reaped = system.call(server.loid, "Reap")
        assert [(loid, exc) for loid, exc in reaped] == [
            (binding.loid, "induced fault")
        ]
        assert server.impl.processes.find(binding.loid) is None
        mag_impl = next(
            m.impl for m in system.magistrates.values() if m.loid == magistrate
        )
        assert any(
            lost == binding.loid and reason == "induced fault"
            for _host, lost, reason in mag_impl.exception_log
        )
        # Checkpointed OPR in the vault: the record falls back to Inert.
        record = mag_impl.managed[binding.loid.identity]
        assert record.state is ObjectState.INERT
        assert record.lost

    def test_reap_without_crashes_is_empty_noop(self, fresh_legion):
        system, _cls = fresh_legion
        server = next(iter(system.host_servers.values()))
        before = len(server.impl.processes)
        assert system.call(server.loid, "Reap") == []
        assert len(server.impl.processes) == before


class TestReactivation:
    def test_reactivate_same_loid_after_reap(self, fresh_legion):
        system, cls = fresh_legion
        binding = system.create_instance(cls.loid)
        system.call(binding.loid, "Increment", 4)
        magistrate = _magistrate(system, cls, binding)
        system.call(magistrate, "Checkpoint", binding.loid)
        _host_id, server = _crash(system, binding)
        system.call(server.loid, "Reap")
        # A plain call re-resolves, the class re-activates from the
        # checkpoint, and the counter keeps its value.
        assert system.call(binding.loid, "Get") == 4

    def test_reactivate_same_loid_with_ghost_still_in_table(self, fresh_legion):
        system, cls = fresh_legion
        binding = system.create_instance(cls.loid)
        system.call(binding.loid, "Increment", 2)
        magistrate = _magistrate(system, cls, binding)
        system.call(magistrate, "Checkpoint", binding.loid)
        _host_id, server = _crash(system, binding)
        # No reap: the crashed entry is still in the table.  Activating the
        # same LOID on the SAME host must evict the ghost instead of
        # tripping the duplicate-LOID guard in ProcessTable.add.
        mag_impl = next(
            m.impl for m in system.magistrates.values() if m.loid == magistrate
        )
        opr = mag_impl.jurisdiction.vault.load_opr(binding.loid)
        address = system.call(server.loid, "Activate", opr)
        assert address is not None
        entry = server.impl.processes.find(binding.loid)
        assert entry is not None and not entry.crashed
        assert entry.server.impl.value == 2  # state came from the checkpoint

    def test_duplicate_guard_still_holds_for_live_processes(self):
        from repro.hosts.process_table import ProcessEntry, ProcessTable
        from repro.naming.loid import LOID

        table = ProcessTable()
        loid = LOID.for_instance(9, 1)
        table.add(ProcessEntry(loid=loid, server=object(), started_at=0.0))
        with pytest.raises(HostError):
            table.add(ProcessEntry(loid=loid, server=object(), started_at=1.0))
