"""Tests for Host Objects: process table, capacity, platforms (2.3, 3.9)."""

import pytest

from repro import errors
from repro.hosts.host_types import (
    CM5HostImpl,
    CrayT3DHostImpl,
    SPMDHostImpl,
    UnixHostImpl,
    UnixSMMPHostImpl,
)
from repro.hosts.process_table import ProcessEntry, ProcessTable
from repro.naming.loid import LOID
from repro.persistence.opr import OPRecord
from repro.workloads.apps import CounterImpl

from tests.core.conftest import start_object


def make_opr(services, seq=1, factory="app.counter", nodes=None, class_id=77):
    if factory not in services.impls:
        services.impls.register(factory, CounterImpl)
    annotations = {"nodes": nodes} if nodes else {}
    return OPRecord(
        loid=LOID.for_instance(class_id, seq, services.secret),
        class_loid=LOID.for_class(class_id, services.secret),
        factory_chain=[(factory, {})],
        annotations=annotations,
    )


def start_host(services, impl):
    return start_object(services, impl, host=impl.host_id)


class TestProcessTable:
    def entry(self, seq=1):
        return ProcessEntry(loid=LOID.for_instance(1, seq), server=None, started_at=0.0)

    def test_add_get_remove(self):
        table = ProcessTable()
        entry = self.entry()
        table.add(entry)
        assert table.get(entry.loid) is entry
        assert table.remove(entry.loid) is entry
        with pytest.raises(errors.HostError):
            table.get(entry.loid)

    def test_duplicate_rejected(self):
        table = ProcessTable()
        table.add(self.entry())
        with pytest.raises(errors.HostError):
            table.add(self.entry())

    def test_crashed_partition(self):
        table = ProcessTable()
        alive = self.entry(1)
        dead = self.entry(2)
        dead.exception = "segfault"
        table.add(alive)
        table.add(dead)
        assert table.crashed_entries() == [dead]
        assert table.running() == [alive]

    def test_resource_sums(self):
        table = ProcessTable()
        a = self.entry(1)
        a.cpu_share = 2.0
        a.memory_bytes = 100
        table.add(a)
        assert table.total_cpu_share == 2.0
        assert table.total_memory == 100


class TestHostActivation:
    def test_activate_returns_live_address(self, services):
        host = start_host(services, UnixHostImpl(host_id=5))
        opr = make_opr(services)
        address = host.impl.activate(opr)
        assert services.network.is_registered(address.primary())
        assert opr.loid in host.impl.processes

    def test_activate_restores_state(self, services):
        host = start_host(services, UnixHostImpl(host_id=5))
        impl = CounterImpl(0)
        impl.value = 77
        opr = make_opr(services).with_state(impl.save_state())
        address = host.impl.activate(opr)
        entry = host.impl.processes.get(opr.loid)
        assert entry.server.impl.value == 77

    def test_activate_idempotent_for_running_object(self, services):
        host = start_host(services, UnixHostImpl(host_id=5))
        opr = make_opr(services)
        first = host.impl.activate(opr)
        second = host.impl.activate(opr)
        assert first == second

    def test_capacity_limit(self, services):
        host = start_host(services, UnixHostImpl(host_id=5, max_processes=2))
        host.impl.activate(make_opr(services, 1))
        host.impl.activate(make_opr(services, 2))
        with pytest.raises(errors.NoCapacity):
            host.impl.activate(make_opr(services, 3))

    def test_not_accepting_refuses(self, services):
        host = start_host(services, UnixHostImpl(host_id=5))
        host.impl.set_accepting(False)
        with pytest.raises(errors.RequestRefused):
            host.impl.activate(make_opr(services))

    def test_deactivate_returns_state_and_frees_slot(self, services):
        host = start_host(services, UnixHostImpl(host_id=5))
        opr = make_opr(services)
        address = host.impl.activate(opr)
        entry = host.impl.processes.get(opr.loid)
        entry.server.impl.value = 9
        state = host.impl.deactivate(opr.loid)
        assert opr.loid not in host.impl.processes
        assert not services.network.is_registered(address.primary())
        fresh = CounterImpl()
        fresh.restore_state(state)
        assert fresh.value == 9

    def test_kill_discards_state(self, services):
        host = start_host(services, UnixHostImpl(host_id=5))
        opr = make_opr(services)
        host.impl.activate(opr)
        host.impl.kill_object(opr.loid)
        host.impl.kill_object(opr.loid)  # idempotent
        assert opr.loid not in host.impl.processes

    def test_cpu_load_limit(self, services):
        host = start_host(services, UnixHostImpl(host_id=5))
        host.impl.set_cpu_load(1.0)
        host.impl.activate(make_opr(services, 1))
        with pytest.raises(errors.NoCapacity):
            host.impl.activate(make_opr(services, 2))
        with pytest.raises(errors.HostError):
            host.impl.set_cpu_load(-1)

    def test_get_state_snapshot(self, services):
        host = start_host(services, UnixHostImpl(host_id=5, max_processes=10))
        host.impl.activate(make_opr(services))
        state = host.impl.get_state()
        assert state.process_count == 1
        assert state.free_slots == 9
        assert state.accepting

    def test_crash_and_reap(self, services):
        host = start_host(services, UnixHostImpl(host_id=5))
        opr = make_opr(services)
        address = host.impl.activate(opr)
        host.impl.crash_object(opr.loid, "oom")
        assert not services.network.is_registered(address.primary())
        # Reap without a magistrate: returns the reaped list.
        fut = services.kernel.spawn(host.impl.reap())
        reaped = services.kernel.run_until_complete(fut)
        assert reaped == [(opr.loid, "oom")]
        assert opr.loid not in host.impl.processes

    def test_composite_chain_activation(self, services):
        from repro.core.composite import CompositeImpl

        services.impls.register("app.counter2", CounterImpl, replace=True)
        host = start_host(services, UnixHostImpl(host_id=5))
        opr = make_opr(services)
        opr.factory_chain.append(("app.counter2", {"start": 5}))
        host.impl.activate(opr)
        entry = host.impl.processes.get(opr.loid)
        assert isinstance(entry.server.impl, CompositeImpl)


class TestPlatformFlavours:
    def test_unix_defaults(self):
        host = UnixHostImpl(host_id=1)
        assert host.platform == "unix"
        assert host.node_count == 1

    def test_smmp_round_robin_nodes(self):
        host = UnixSMMPHostImpl(host_id=1, processors=4)
        nodes = [host.next_node() for _ in range(6)]
        assert nodes == [0, 1, 2, 3, 0, 1]

    def test_spmd_partitions_consume_nodes(self, services):
        host = start_host(services, SPMDHostImpl(host_id=6, total_nodes=16, partition_nodes=8))
        host.impl.activate(make_opr(services, 1))
        assert host.impl.nodes_in_use == 8
        host.impl.activate(make_opr(services, 2))
        with pytest.raises(errors.NoCapacity):
            host.impl.activate(make_opr(services, 3))
        host.impl.deactivate(make_opr(services, 1).loid)
        assert host.impl.nodes_in_use == 8

    def test_spmd_per_opr_partition_size(self, services):
        host = start_host(services, SPMDHostImpl(host_id=6, total_nodes=16, partition_nodes=4))
        host.impl.activate(make_opr(services, 1, nodes=12))
        assert host.impl.nodes_in_use == 12

    def test_cm5_power_of_two_partitions(self, services):
        host = start_host(services, CM5HostImpl(host_id=7, total_nodes=256))
        host.impl.activate(make_opr(services, 1, nodes=33))
        assert host.impl.nodes_in_use == 64  # rounded up to a power of two

    def test_cray_pe_pairs(self, services):
        host = start_host(services, CrayT3DHostImpl(host_id=8, total_nodes=64))
        host.impl.activate(make_opr(services, 1, nodes=3))
        assert host.impl.nodes_in_use == 4  # rounded to PE pairs
