"""Jurisdiction splitting (paper section 2.2)."""

import pytest

from repro import errors
from repro.jurisdiction.magistrate import ObjectState
from repro.jurisdiction.split import split_jurisdiction
from repro.system.legion import LegionSystem, SiteSpec
from repro.workloads.apps import CounterImpl


@pytest.fixture
def loaded_system():
    """A one-site system (4 hosts) with objects on every host."""
    system = LegionSystem.build([SiteSpec("big", hosts=4)], seed=21)
    cls = system.create_class("Counter", factory=CounterImpl)
    objects = []
    for host_loid in system.jurisdictions["big"].host_objects:
        objects.append(
            system.call(
                cls.loid,
                "Create",
                {"magistrate": system.magistrates["big"].loid, "host": host_loid},
            )
        )
    for i, binding in enumerate(objects):
        system.call(binding.loid, "Increment", i + 1)
    return system, cls, objects


class TestSplit:
    def test_resources_partition(self, loaded_system):
        system, _cls, _objects = loaded_system
        new_server = split_jurisdiction(system, "big")
        old_j = system.jurisdictions["big"]
        new_j = system.jurisdictions["big-split"]
        assert len(old_j.host_objects) == 2
        assert len(new_j.host_objects) == 2
        assert not old_j.overlaps(new_j)
        assert new_j.parent is old_j  # hierarchy (Fig. 10)
        assert new_j.magistrate == new_server.loid

    def test_objects_follow_their_hosts(self, loaded_system):
        system, cls, objects = loaded_system
        new_server = split_jurisdiction(system, "big")
        # The 4 counters split evenly by host; the Counter *class object*
        # (also managed, on whichever host it landed) follows its host too.
        placements = [
            system.call(cls.loid, "GetRow", b.loid).current_magistrates[0]
            for b in objects
        ]
        assert placements.count(new_server.loid) == 2
        assert placements.count(system.magistrates["big"].loid) == 2
        # Every object still answers, with state intact.
        for i, binding in enumerate(objects):
            assert system.call(binding.loid, "Get") == i + 1

    def test_moved_objects_report_new_magistrate(self, loaded_system):
        system, cls, objects = loaded_system
        new_server = split_jurisdiction(system, "big")
        moved = [
            b
            for b in objects
            if system.call(cls.loid, "GetRow", b.loid).current_magistrates
            == [new_server.loid]
        ]
        assert len(moved) == 2
        # Re-referencing a moved object activates it under the NEW
        # magistrate, in the new jurisdiction's host set.
        target = moved[0]
        system.call(target.loid, "Ping")
        assert (
            system.call(new_server.loid, "GetObjectState", target.loid)
            is ObjectState.ACTIVE
        )

    def test_new_magistrate_registered_with_class(self, loaded_system):
        system, _cls, _objects = loaded_system
        new_server = split_jurisdiction(system, "big")
        mag_cls = system.standard_classes["StandardMagistrate"].impl
        assert new_server.loid in mag_cls.table

    def test_new_magistrate_receives_new_creations(self, loaded_system):
        system, cls, _objects = loaded_system
        new_server = split_jurisdiction(system, "big")
        # Existing classes snapshot their candidate lists at Derive time;
        # the reflective hook extends them to the split-off magistrate.
        system.call(cls.loid, "AddCandidateMagistrate", new_server.loid)
        rows = [
            system.call(cls.loid, "GetRow", system.call(cls.loid, "Create", {}).loid)
            for _ in range(4)
        ]
        magistrates_used = {r.current_magistrates[0] for r in rows}
        assert new_server.loid in magistrates_used

    def test_degenerate_splits_rejected(self, loaded_system):
        system, _cls, _objects = loaded_system
        hosts = system.jurisdictions["big"].host_objects
        with pytest.raises(errors.LegionError):
            split_jurisdiction(system, "big", hosts_to_move=list(hosts))
        with pytest.raises(errors.LegionError):
            split_jurisdiction(system, "big", hosts_to_move=[])

    def test_duplicate_name_rejected(self, loaded_system):
        system, _cls, _objects = loaded_system
        split_jurisdiction(system, "big")
        with pytest.raises(errors.LegionError):
            split_jurisdiction(system, "big", new_name="big-split")

    def test_split_relieves_magistrate_load(self, loaded_system):
        """The paper's motivation: the split takes load off the magistrate."""
        from repro.metrics.counters import ComponentId, ComponentKind

        system, cls, objects = loaded_system
        new_server = split_jurisdiction(system, "big")
        system.reset_measurements()
        # Deactivate/reactivate everything: lifecycle load now splits.
        for binding in objects:
            row = system.call(cls.loid, "GetRow", binding.loid)
            magistrate = row.current_magistrates[0]
            system.call(magistrate, "Deactivate", binding.loid)
            system.call(magistrate, "Activate", binding.loid)
        metrics = system.services.metrics
        old_load = metrics.get(ComponentId(ComponentKind.MAGISTRATE, "big"))
        new_load = metrics.get(ComponentId(ComponentKind.MAGISTRATE, "big-split"))
        assert old_load > 0 and new_load > 0
        total = old_load + new_load
        assert old_load < total  # strictly shared, not all on the old one
