"""Tests for Jurisdiction structure (2.2, Fig. 10)."""


from repro.jurisdiction.jurisdiction import Jurisdiction
from repro.naming.loid import LOID


def host_object(n):
    return LOID.for_instance(3, n)


class TestMembership:
    def test_add_and_remove_hosts(self):
        j = Jurisdiction("uva")
        j.add_host(1, host_object(1))
        assert j.contains_host(1)
        assert j.host_objects == [host_object(1)]
        j.remove_host(1, host_object(1))
        assert not j.contains_host(1)
        assert j.host_objects == []

    def test_add_host_idempotent(self):
        j = Jurisdiction("uva")
        j.add_host(1, host_object(1))
        j.add_host(1, host_object(1))
        assert len(j.host_objects) == 1

    def test_overlap(self):
        # "Jurisdictions are potentially non-disjoint" -- one host may be
        # offered to two jurisdictions simultaneously.
        a = Jurisdiction("a")
        b = Jurisdiction("b")
        a.add_host(1, host_object(1))
        b.add_host(1, host_object(1))
        b.add_host(2, host_object(2))
        assert a.overlaps(b)
        assert b.overlaps(a)
        assert not a.overlaps(Jurisdiction("c"))


class TestHierarchy:
    def test_parent_child_links(self):
        root = Jurisdiction("root")
        child = Jurisdiction("child", parent=root)
        grand = Jurisdiction("grand", parent=child)
        assert root.children == [child]
        assert grand.ancestors() == [child, root]
        assert [j.name for j in root.subtree()] == ["root", "child", "grand"]

    def test_vault_is_jurisdiction_scoped(self):
        j = Jurisdiction("uva")
        assert j.vault.jurisdiction == "uva"
