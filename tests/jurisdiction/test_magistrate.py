"""Magistrate behaviour against a live system (section 3.8)."""

import pytest

from repro import errors
from repro.jurisdiction.magistrate import ObjectState


def make_object(system, cls, site=None, **hints):
    if site is not None:
        hints["magistrate"] = system.magistrates[site].loid
    return system.call(cls.loid, "Create", hints)


class TestActivation:
    def test_object_state_transitions(self, legion):
        system, cls = legion
        site = system.sites[0].name
        magistrate = system.magistrates[site].loid
        binding = make_object(system, cls, site)
        assert (
            system.call(magistrate, "GetObjectState", binding.loid)
            is ObjectState.ACTIVE
        )
        system.call(magistrate, "Deactivate", binding.loid)
        assert (
            system.call(magistrate, "GetObjectState", binding.loid)
            is ObjectState.INERT
        )
        assert system.jurisdictions[site].vault.holds(binding.loid)
        system.call(magistrate, "Activate", binding.loid)
        assert (
            system.call(magistrate, "GetObjectState", binding.loid)
            is ObjectState.ACTIVE
        )
        assert not system.jurisdictions[site].vault.holds(binding.loid)

    def test_deactivate_idempotent(self, legion):
        system, cls = legion
        site = system.sites[0].name
        magistrate = system.magistrates[site].loid
        binding = make_object(system, cls, site)
        system.call(magistrate, "Deactivate", binding.loid)
        system.call(magistrate, "Deactivate", binding.loid)

    def test_activate_already_active_returns_address(self, legion):
        system, cls = legion
        site = system.sites[0].name
        magistrate = system.magistrates[site].loid
        binding = make_object(system, cls, site)
        address = system.call(magistrate, "Activate", binding.loid)
        assert address == binding.address

    def test_activate_with_host_suggestion(self, legion):
        system, cls = legion
        site = system.sites[0].name
        magistrate = system.magistrates[site].loid
        host = system.jurisdictions[site].host_objects[1]
        binding = make_object(system, cls, site)
        system.call(magistrate, "Deactivate", binding.loid)
        address = system.call(magistrate, "Activate", binding.loid, host)
        host_server = [
            s for s in system.host_servers.values() if s.loid == host
        ][0]
        assert address.primary().host == host_server.impl.host_id

    def test_unknown_object_rejected(self, legion):
        system, cls = legion
        from repro.naming.loid import LOID

        magistrate = system.magistrates[system.sites[0].name].loid
        ghost = LOID.for_instance(cls.loid.class_id, 777777, system.services.secret)
        with pytest.raises(errors.UnknownObject):
            system.call(magistrate, "Activate", ghost)

    def test_foreign_host_suggestion_refused(self, legion):
        system, cls = legion
        site0, site1 = system.sites[0].name, system.sites[1].name
        magistrate = system.magistrates[site0].loid
        foreign_host = system.jurisdictions[site1].host_objects[0]
        binding = make_object(system, cls, site0)
        system.call(magistrate, "Deactivate", binding.loid)
        with pytest.raises(errors.RequestRefused):
            system.call(magistrate, "Activate", binding.loid, foreign_host)


class TestMigration:
    def test_copy_leaves_source_in_charge(self, fresh_legion):
        system, cls = fresh_legion
        site0, site1 = system.sites[0].name, system.sites[1].name
        source = system.magistrates[site0].loid
        target = system.magistrates[site1].loid
        binding = make_object(system, cls, site0)
        system.call(binding.loid, "Increment", 5)
        system.call(source, "Copy", binding.loid, target)
        # Both vaults/managements know the object now.
        assert system.call(source, "GetObjectState", binding.loid) is ObjectState.INERT
        assert system.call(target, "GetObjectState", binding.loid) is ObjectState.INERT
        assert system.jurisdictions[site1].vault.holds(binding.loid)

    def test_move_transfers_management_and_state(self, fresh_legion):
        system, cls = fresh_legion
        site0, site1 = system.sites[0].name, system.sites[1].name
        source = system.magistrates[site0].loid
        target = system.magistrates[site1].loid
        binding = make_object(system, cls, site0)
        system.call(binding.loid, "Increment", 5)
        system.call(source, "Move", binding.loid, target)
        with pytest.raises(errors.UnknownObject):
            system.call(source, "GetObjectState", binding.loid)
        # Re-reference: activated at the target jurisdiction, state intact.
        assert system.call(binding.loid, "Get") == 5
        row = system.call(cls.loid, "GetRow", binding.loid)
        assert row.current_magistrates == [target]

    def test_move_runs_object_on_target_site_hosts(self, fresh_legion):
        system, cls = fresh_legion
        site0, site1 = system.sites[0].name, system.sites[1].name
        source = system.magistrates[site0].loid
        target = system.magistrates[site1].loid
        binding = make_object(system, cls, site0)
        system.call(source, "Move", binding.loid, target)
        system.call(binding.loid, "Ping")
        fresh = system.call(cls.loid, "GetBinding", binding.loid)
        assert (
            system.network.latency.site_of(fresh.address.primary().host) == site1
        )


class TestExceptionReporting:
    def test_crash_report_falls_back_to_management_drop(self, fresh_legion):
        system, cls = fresh_legion
        site = system.sites[0].name
        magistrate_server = system.magistrates[site]
        magistrate = magistrate_server.loid
        binding = make_object(system, cls, site)
        # Find the host server running it and crash the process.
        for host_server in system.host_servers.values():
            entry = host_server.impl.processes.find(binding.loid)
            if entry is not None:
                host_server.impl.crash_object(binding.loid, "simulated")
                crashed_host = host_server
                break
        fut = system.spawn(crashed_host.impl.reap())
        reaped = system.kernel.run_until_complete(fut)
        assert reaped and reaped[0][0] == binding.loid
        assert magistrate_server.impl.exception_log
        # No vault OPR existed (object was Active) -> dropped entirely.
        with pytest.raises(errors.UnknownObject):
            system.call(magistrate, "GetObjectState", binding.loid)


class TestManagedCount:
    def test_counts_track_creation_and_deletion(self, fresh_legion):
        system, cls = fresh_legion
        site = system.sites[0].name
        magistrate = system.magistrates[site].loid
        before = system.call(magistrate, "ManagedCount")
        binding = make_object(system, cls, site)
        assert system.call(magistrate, "ManagedCount") == before + 1
        system.call(cls.loid, "Delete", binding.loid)
        assert system.call(magistrate, "ManagedCount") == before
