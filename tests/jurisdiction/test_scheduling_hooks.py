"""The magistrate's primitive scheduling functions (section 3.8)."""

import pytest

from repro import errors


class TestSchedulingHooks:
    def test_get_hosts_lists_the_jurisdiction(self, fresh_legion):
        system, _cls = fresh_legion
        site = system.sites[0].name
        magistrate = system.magistrates[site].loid
        hosts = system.call(magistrate, "GetHosts")
        assert set(hosts) == set(system.jurisdictions[site].host_objects)

    def test_set_placement_policy(self, fresh_legion):
        system, cls = fresh_legion
        site = system.sites[0].name
        magistrate = system.magistrates[site].loid
        system.call(magistrate, "SetPlacementPolicy", "least-loaded")
        assert system.magistrates[site].impl.placement == "least-loaded"
        with pytest.raises(errors.RequestRefused):
            system.call(magistrate, "SetPlacementPolicy", "coin-flip")

    def test_suggest_placement_consumed_on_next_activation(self, fresh_legion):
        system, cls = fresh_legion
        site = system.sites[0].name
        magistrate = system.magistrates[site].loid
        binding = system.call(cls.loid, "Create", {"magistrate": magistrate})
        system.call(magistrate, "Deactivate", binding.loid)

        # A (simulated) Scheduling Agent pins the next activation.
        target_host = system.jurisdictions[site].host_objects[1]
        system.call(magistrate, "SuggestPlacement", binding.loid, target_host)
        address = system.call(magistrate, "Activate", binding.loid)
        host_server = next(
            s for s in system.host_servers.values() if s.loid == target_host
        )
        assert address.primary().host == host_server.impl.host_id

        # Consumed once: the next cycle reverts to the default policy.
        assert binding.loid.identity not in system.magistrates[site].impl.placement_suggestions

    def test_first_fit_packs_the_first_host(self, fresh_legion):
        system, cls = fresh_legion
        site = system.sites[0].name
        magistrate = system.magistrates[site].loid
        system.call(magistrate, "SetPlacementPolicy", "first-fit")
        bindings = [
            system.call(cls.loid, "Create", {"magistrate": magistrate})
            for _ in range(3)
        ]
        first_host_server = next(
            s
            for s in system.host_servers.values()
            if s.loid == system.magistrates[site].impl.hosts[0].loid
        )
        hosts_used = {b.address.primary().host for b in bindings}
        assert hosts_used == {first_host_server.impl.host_id}
        # Drain the first host: first-fit moves to the second.
        first_host_server.impl.set_accepting(False)
        spill = system.call(cls.loid, "Create", {"magistrate": magistrate})
        assert spill.address.primary().host != first_host_server.impl.host_id
        first_host_server.impl.set_accepting(True)
        system.call(magistrate, "SetPlacementPolicy", "round-robin")

    def test_suggest_placement_rejects_foreign_host(self, fresh_legion):
        system, cls = fresh_legion
        site0, site1 = system.sites[0].name, system.sites[1].name
        magistrate = system.magistrates[site0].loid
        binding = system.call(cls.loid, "Create", {"magistrate": magistrate})
        foreign = system.jurisdictions[site1].host_objects[0]
        with pytest.raises(errors.RequestRefused):
            system.call(magistrate, "SuggestPlacement", binding.loid, foreign)

    def test_explicit_hint_beats_standing_suggestion(self, fresh_legion):
        system, cls = fresh_legion
        site = system.sites[0].name
        magistrate = system.magistrates[site].loid
        binding = system.call(cls.loid, "Create", {"magistrate": magistrate})
        system.call(magistrate, "Deactivate", binding.loid)
        hosts = system.jurisdictions[site].host_objects
        system.call(magistrate, "SuggestPlacement", binding.loid, hosts[0])
        address = system.call(magistrate, "Activate", binding.loid, hosts[1])
        host_server = next(
            s for s in system.host_servers.values() if s.loid == hosts[1]
        )
        assert address.primary().host == host_server.impl.host_id
