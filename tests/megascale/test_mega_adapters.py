"""E14/E15 mega adapters: invariants at a small (fast) population.

These run the real adapter code paths -- the live CloneController for
E14, the per-host carryover queues for E15 -- at populations small enough
for CI, asserting the same invariants the experiment checks gate on at
10^6-10^7.
"""

import pytest

from repro.megascale.adapters import (
    MEGA_QCAP_TICKS,
    run_e9_mega_unit,
    run_mega_autoscale,
    run_mega_overload,
)


class TestE9MegaUnit:
    def test_unit_settles_and_exercises_the_boundary(self):
        unit = run_e9_mega_unit(10_000, seed=0, quick=True)
        assert unit["settled"] and unit["wire_settled"]
        assert unit["issued"] == unit["completed"] + unit["shed"]
        assert unit["promotions"] > 0
        assert unit["demotions"] == unit["promotions"]
        assert unit["allocator_high_water"] == 10_000
        assert unit["max_class_load"] > 0

    def test_unit_is_deterministic(self):
        a = run_e9_mega_unit(10_000, seed=3, quick=True)
        b = run_e9_mega_unit(10_000, seed=3, quick=True)
        assert a == b


class TestE15MegaOverload:
    def test_flow_arm_bounds_the_queue_and_settles(self):
        unit = run_mega_overload(3, "flow", seed=0, quick=True, population=20_000)
        assert unit["settled"]
        assert unit["max_queue"] <= unit["qcap"]
        assert unit["shed"] > 0  # 3x overload: the cap bit
        assert unit["class_calls_total"] == unit["admitted"]
        assert unit["goodput_x"] >= 0.8

    def test_baseline_arm_queues_unboundedly_and_collapses(self):
        flow = run_mega_overload(3, "flow", seed=0, quick=True, population=20_000)
        base = run_mega_overload(3, "baseline", seed=0, quick=True, population=20_000)
        assert base["settled"]
        assert base["shed"] == 0
        assert base["max_queue"] > base["qcap"]
        assert base["goodput_x"] < flow["goodput_x"]
        # same seeded arrivals either way: the arms admit differently but
        # issue identically
        assert base["issued"] == flow["issued"]

    def test_underload_neither_sheds_nor_queues(self):
        unit = run_mega_overload(1, "flow", seed=0, quick=True, population=20_000)
        assert unit["settled"]
        assert unit["shed"] == 0
        assert unit["queued_end"] <= unit["qcap"] * 8  # drains tick-to-tick
        assert unit["goodput_x"] >= 0.8

    def test_qcap_scales_with_capacity(self):
        unit = run_mega_overload(2, "flow", seed=0, quick=True, population=20_000)
        n_hosts = 8  # max(8, 20_000 // 125_000)
        cap = max(1, 20_000 // 50 // n_hosts)
        assert unit["qcap"] == MEGA_QCAP_TICKS * cap


class TestE14MegaAutoscale:
    @pytest.fixture(scope="class")
    def unit(self):
        return run_mega_autoscale(3, seed=0, quick=True, population=20_000)

    def test_provisions_to_demand_and_drains(self, unit):
        assert unit["final_members_at_load"] >= unit["expected_members"]
        assert unit["expected_members"] >= 3  # level 3 needs real scale-out
        assert unit["drained_to_min"]

    def test_demand_accounting_closes(self, unit):
        assert unit["issued"] == unit["routed"]
        assert unit["caller_calls_total"] == unit["issued"]

    def test_binding_caches_lazily_rebind(self, unit):
        assert 0 < unit["rebinds"] <= unit["issued"]
        assert unit["fresh_members_valid"]
        # nearly all of the population never called, so never rebound
        assert unit["stale_fraction_final"] > 0.5

    def test_caller_ids_stay_monotone(self, unit):
        assert unit["allocator_high_water"] == unit["population"] == 20_000
