"""StateFrame and IdAllocator unit tests.

The allocator-monotonicity tests are the regression pinning the PR's id
contract: escalation/demotion churn must never recycle a dense id within
a run, or trace and audit rows recorded before the churn would silently
refer to a different logical object after it.
"""

import pytest

from repro.errors import LegionError
from repro.megascale import BULK, LOST, PROMOTED, BulkEngine, IdAllocator, StateFrame


def make_frame(n=12, n_classes=3, n_hosts=4):
    frame = StateFrame(n_classes=n_classes, n_hosts=n_hosts)
    np = frame.np
    frame.extend(
        n,
        klass=(np.arange(n) % n_classes).astype(np.int32),
        host=(np.arange(n) % n_hosts).astype(np.int32),
    )
    return frame


# ------------------------------------------------------------- id allocator


class TestIdAllocatorMonotone:
    def test_ranges_are_contiguous_and_disjoint(self):
        alloc = IdAllocator()
        a = alloc.alloc(5)
        b = alloc.alloc(3)
        assert list(a) == [0, 1, 2, 3, 4]
        assert list(b) == [5, 6, 7]
        assert alloc.high_water == 8

    def test_zero_count_moves_nothing(self):
        alloc = IdAllocator()
        assert list(alloc.alloc(0)) == []
        assert alloc.high_water == 0

    def test_negative_count_rejected(self):
        with pytest.raises(LegionError):
            IdAllocator().alloc(-1)

    def test_there_is_deliberately_no_release(self):
        # The absence of a free/release operation IS the contract; a
        # future "optimisation" adding one would break trace identity.
        alloc = IdAllocator()
        assert not hasattr(alloc, "release")
        assert not hasattr(alloc, "free")

    def test_escalation_churn_never_recycles_an_id(self):
        """Promote/demote cycles must not move the high-water mark, and
        new rows must always get ids above every id ever issued."""
        frame = make_frame(8)
        engine = BulkEngine(frame)
        before = frame.allocator.high_water
        for _ in range(5):
            engine._promote([2, 5], reason="touch")
            engine._last_touch[2] = engine._last_touch[5] = 0
            engine.demote_all()
        assert frame.allocator.high_water == before
        new_ids = frame.extend(3, klass=0, host=0)
        assert list(new_ids) == [before, before + 1, before + 2]


# ------------------------------------------------------------------- frame


class TestStateFrame:
    def test_new_rows_start_bulk_zeroed_cold(self):
        frame = make_frame(6)
        assert frame.band_histogram() == {"bulk": 6, "promoted": 0, "lost": 0}
        assert int(frame.value.sum()) == 0
        assert bool((frame.cache_epoch == -1).all())

    def test_extend_validates_class_and_host_ranges(self):
        frame = StateFrame(n_classes=2, n_hosts=2)
        with pytest.raises(LegionError):
            frame.extend(1, klass=2, host=0)
        with pytest.raises(LegionError):
            frame.extend(1, klass=0, host=-1)

    def test_occupancy_tracks_extend_promote_demote(self):
        frame = make_frame(8, n_hosts=2)
        assert [int(x) for x in frame.host_occupancy] == [4, 4]
        frame.promote([0, 2])  # both on host 0
        assert [int(x) for x in frame.host_occupancy] == [2, 4]
        frame.demote(0, value=7, host=1)
        assert [int(x) for x in frame.host_occupancy] == [2, 5]
        assert int(frame.value[0]) == 7
        assert int(frame.host[0]) == 1

    def test_promote_demote_round_trips_the_value(self):
        frame = make_frame(4)
        frame.value[1] = 41
        (snap,) = frame.promote([1])
        assert snap["value"] == 41 and snap["state"] == BULK
        assert int(frame.state[1]) == PROMOTED
        frame.demote(1, value=snap["value"] + 1)
        assert int(frame.state[1]) == BULK
        assert int(frame.value[1]) == 42

    def test_double_promote_rejected(self):
        frame = make_frame(4)
        frame.promote([1])
        with pytest.raises(LegionError):
            frame.promote([1])

    def test_demote_requires_promoted_and_live_host(self):
        frame = make_frame(4)
        with pytest.raises(LegionError):
            frame.demote(0, value=1)
        frame.promote([0])
        frame.crash_host(0)  # row 0 lives on host 0
        with pytest.raises(LegionError):
            frame.demote(0, value=1)
        frame.demote(0, value=1, host=1)  # re-homing works

    def test_mark_lost_vacates_once_then_promote_does_not_double_count(self):
        frame = make_frame(8, n_hosts=2)
        ids = frame.bulk_ids_on_host(0)
        frame.mark_lost(ids)
        assert [int(x) for x in frame.host_occupancy] == [0, 4]
        assert int((frame.state == LOST).sum()) == len(ids)
        frame.promote(ids)  # recovery path: occupancy must not go negative
        assert [int(x) for x in frame.host_occupancy] == [0, 4]

    def test_checksum_is_order_sensitive(self):
        frame = make_frame(4)
        frame.value[0], frame.value[1] = 1, 2
        a = frame.value_checksum()
        frame.value[0], frame.value[1] = 2, 1
        assert frame.value_checksum() != a

    def test_checksum_empty_frame_is_zero(self):
        assert StateFrame(n_classes=1, n_hosts=1).value_checksum() == 0
