"""The megascale suite needs numpy; skip gracefully on numpy-less installs."""

import pytest

np = pytest.importorskip("numpy", reason="repro[mega] extra not installed")


@pytest.fixture
def numpy():
    return np
