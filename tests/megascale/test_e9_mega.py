"""The ``--mega`` wiring on E9: sharding stays byte-identical, numpy stays
optional.

``--mega N`` appends a columnar ladder (N/100, N/10, N -- floored at
10^4) to E9's sweep.  The sharded-runner contract must survive the new
arm: ``--shards`` is purely a wall-clock optimisation, so the rendered
report has to match the sequential reference byte for byte at any shard
count.  And because numpy is an optional extra, a numpy-less install
must fail with one actionable LegionError, not a traceback.
"""

import pytest

from repro.errors import LegionError
from repro.experiments import e9_scaling
from repro.experiments.runner import run_one
from repro.megascale.adapters import e9_mega_sizes

MEGA = 20_000  # ladder: [10_000, 20_000] under the LADDER_FLOOR


def test_mega_units_extend_the_sweep():
    base = e9_scaling.shard_units(quick=True)
    mega = e9_scaling.shard_units(quick=True, mega=MEGA)
    assert base == [u for u in mega if u[0] != "mega"]
    assert [u for u in mega if u[0] == "mega"] == [
        ("mega", 10_000),
        ("mega", MEGA),
    ]


def test_ladder_floor_and_dedup():
    assert e9_mega_sizes(10_000, quick=True) == [10_000]
    assert e9_mega_sizes(2_000_000, quick=True) == [
        20_000,
        200_000,
        2_000_000,
    ]


def test_shards_1_and_2_mega_reports_are_byte_identical():
    seq = run_one("e9", quick=True, seed=0, shards=1, mega=MEGA)
    par = run_one("e9", quick=True, seed=0, shards=2, mega=MEGA)
    assert seq.passed, f"e9 --mega failed sequentially:\n{seq.report}"
    assert seq.report == par.report, "e9 --mega diverged across --shards"
    assert "mega" in seq.report


def test_mega_run_exposes_the_slope_for_the_bench_gate():
    result = e9_scaling.run(quick=True, seed=0, mega=MEGA)
    assert result.passed, result.render()
    assert hasattr(result, "mega_slope")
    assert result.mega_slope < 0.35


def test_run_composes_from_the_shard_hooks_with_mega():
    partials = [
        e9_scaling.shard_measure(unit, quick=True, seed=0, mega=MEGA)
        for unit in e9_scaling.shard_units(quick=True, mega=MEGA)
    ]
    composed = e9_scaling.shard_finish(partials, quick=True, seed=0, mega=MEGA)
    direct = e9_scaling.run(quick=True, seed=0, mega=MEGA)
    assert composed.render() == direct.render()


def test_numpyless_install_gets_one_actionable_error(monkeypatch):
    from repro.megascale import compat

    monkeypatch.setattr(compat, "HAVE_NUMPY", False)
    with pytest.raises(LegionError) as exc:
        compat.require_numpy("the --mega flag")
    message = str(exc.value)
    assert "the --mega flag" in message
    assert 'pip install "repro[mega]"' in message
