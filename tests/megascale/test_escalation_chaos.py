"""Chaos at the escalation boundary (satellite: fault-driven promotion).

Crashing a host with bulk-backed slots must promote *exactly* the
affected ids -- the bulk rows occupying that host's slots, nothing more --
and the settlement identity (shed term included) must still close through
the churn.
"""

import pytest

from repro.megascale import BULK, PROMOTED, BulkEngine, StateFrame


def build(n=600, n_classes=3, n_hosts=6, limit=2, hot=(0, 200, 400)):
    frame = StateFrame(n_classes=n_classes, n_hosts=n_hosts)
    np = frame.np
    frame.extend(
        n,
        klass=(np.arange(n) % n_classes).astype(np.int32),
        host=(np.arange(n) % n_hosts).astype(np.int32),
    )
    return frame, BulkEngine(frame, hot_ids=hot, per_tick_limit=limit, demote_after=2)


class TestCrashPromotesExactlyTheAffected:
    def test_blast_radius_is_the_bulk_rows_on_the_host(self):
        frame, engine = build()
        np = frame.np
        expected = set(frame.bulk_ids_on_host(2).tolist())
        assert expected  # the host actually had occupants
        untouched_before = frame.band_histogram()["bulk"] - len(expected)
        promoted = engine.crash_host(2)
        assert set(promoted) == expected
        assert promoted == sorted(promoted)  # dense-id order
        assert engine.ledger.fault_promotions == len(expected)
        assert sorted(engine.ledger.promoted_by_fault) == sorted(expected)
        # nothing else moved bands
        assert frame.band_histogram()["bulk"] == untouched_before
        others = np.setdiff1d(np.arange(frame.size), np.asarray(promoted))
        assert bool((frame.state[others] == BULK).all())
        assert bool((frame.state[np.asarray(promoted)] == PROMOTED).all())

    def test_already_promoted_rows_are_not_repromoted_by_the_crash(self):
        frame, engine = build()
        engine._escalated_call(2, 0)  # id 2 lives on host 2 (2 % 6)
        assert int(frame.state[2]) == PROMOTED
        promoted = engine.crash_host(2)
        assert 2 not in promoted
        assert promoted  # the host's other bulk rows still escalate

    def test_crash_of_empty_host_promotes_nothing(self):
        frame, engine = build()
        first = engine.crash_host(3)
        assert first
        again = engine.crash_host(3)  # idempotent: slots already vacated
        assert again == []


class TestSettlementThroughChaos:
    def test_identity_closes_with_shed_and_fault_churn(self):
        frame, engine = build(limit=1)
        np = frame.np
        rng = np.random.default_rng(19)
        for tick in range(12):
            engine.tick(tick, rng.integers(0, frame.size, size=900))
            if tick == 3:
                engine.crash_host(1)
            if tick == 7:
                engine.restore_host(1)
            engine.demote_idle(tick)
        engine.demote_all()
        ledger = engine.ledger
        assert ledger.shed > 0  # the admission limit bit
        assert ledger.fault_promotions > 0  # the crash bit
        assert engine.settled()  # issued == bulk + escalated + shed
        assert (
            ledger.issued
            == ledger.bulk_completed + ledger.escalated_completed + ledger.shed
        )
        # every fault-promoted id is back in the bulk band on a live host
        assert frame.band_histogram()["promoted"] == 0
        hosts = frame.host[np.asarray(ledger.promoted_by_fault, dtype=np.int64)]
        assert bool(frame.host_up[hosts].all())

    def test_demotion_rehomes_rows_off_the_dead_host(self):
        frame, engine = build()
        victims = engine.crash_host(0)
        engine.demote_all()
        assert bool((frame.host[victims] != 0).all())
        assert frame.band_histogram()["promoted"] == 0

    def test_no_surviving_host_is_a_clean_error(self):
        from repro.errors import LegionError

        frame, engine = build(n=6, n_hosts=2, hot=())
        engine.crash_host(0)
        engine.crash_host(1)
        with pytest.raises(LegionError):
            engine.demote_all()
