"""The differential harness: one seeded scenario, interchangeable backends.

Three-way equivalence:

* columnar :class:`BulkEngine` vs the numpy-free per-agent
  :class:`ReferenceMachine` -- identical ledgers, per-class counters,
  per-id values, and checksums, including shed and crash paths;
* columnar-with-live-escalation (:func:`run_columnar`) vs the
  all-rich-objects backend (:func:`run_rich`) at overlap scales: the
  rendered :class:`MegaReport` must match **byte for byte** -- per-class
  counters, settlement identities, value checksums, the lot.

The columnar backend is only trusted at 10^6-10^7 where these proofs
hold at 10^2-10^4.
"""

import os

import pytest

from repro.megascale import (
    BulkEngine,
    ReferenceMachine,
    StateFrame,
    differential_spec,
    run_columnar,
    run_rich,
)

#: The rich arm builds one real Legion object per id, so the top overlap
#: scale (10^4 objects, ~6 s) only runs when asked for explicitly --
#: CI's differential job sets MEGA_DIFF_SCALE=10000.
DEFAULT_SCALES = [100, 1000]


def overlap_scales():
    scales = list(DEFAULT_SCALES)
    extra = int(os.environ.get("MEGA_DIFF_SCALE", "0"))
    if extra:
        scales.append(extra)
    return scales


def drive_pair(seed, n=400, ticks=10, per_tick=250, limit=2, crash_at=None):
    """Drive engine and reference through one identical seeded scenario."""
    np = pytest.importorskip("numpy")
    rng = np.random.default_rng(seed)
    n_classes, n_hosts = 4, 5
    hot = [0, n // 3, 2 * n // 3]
    frame = StateFrame(n_classes=n_classes, n_hosts=n_hosts)
    klass = (np.arange(n) % n_classes).astype(np.int32)
    host = (np.arange(n) % n_hosts).astype(np.int32)
    frame.extend(n, klass=klass, host=host)
    engine = BulkEngine(frame, hot_ids=hot, per_tick_limit=limit, demote_after=2)
    ref = ReferenceMachine(
        n_classes, n_hosts, hot_ids=hot, per_tick_limit=limit, demote_after=2
    )
    ref.extend(n, klass=klass, host=host)
    for tick in range(ticks):
        targets = rng.integers(0, n, size=per_tick)
        engine.tick(tick, targets)
        ref.tick(tick, targets)
        if crash_at is not None and tick == crash_at:
            assert engine.crash_host(1) == ref.crash_host(1)
        if crash_at is not None and tick == crash_at + 2:
            engine.restore_host(1)
            ref.restore_host(1)
        engine.demote_idle(tick)
        ref.demote_idle(tick)
    engine.demote_all()
    ref.demote_all()
    return engine, ref


def assert_twins_equal(engine, ref):
    frame = engine.frame
    el, rl = engine.ledger, ref.ledger
    assert (el.issued, el.bulk_completed, el.escalated_completed, el.shed) == (
        rl.issued,
        rl.bulk_completed,
        rl.escalated_completed,
        rl.shed,
    )
    assert (el.promotions, el.demotions, el.fault_promotions) == (
        rl.promotions,
        rl.demotions,
        rl.fault_promotions,
    )
    assert el.promoted_by_fault == rl.promoted_by_fault
    assert engine.settled() and ref.settled()
    assert [int(x) for x in frame.class_calls] == ref.class_calls
    assert [int(x) for x in frame.class_sheds] == ref.class_sheds
    assert [int(v) for v in frame.value] == [o.value for o in ref.objects]
    assert frame.value_checksum() == ref.value_checksum()
    assert frame.band_histogram() == ref.band_histogram()


class TestEngineVsReference:
    @pytest.mark.parametrize("seed", [0, 1, 7])
    def test_calm_scenario_matches_exactly(self, seed):
        assert_twins_equal(*drive_pair(seed))

    @pytest.mark.parametrize("seed", [3, 11])
    def test_shed_path_matches_exactly(self, seed):
        engine, ref = drive_pair(seed, n=50, per_tick=600, limit=1)
        assert engine.ledger.shed > 0  # the limit actually bit
        assert_twins_equal(engine, ref)

    @pytest.mark.parametrize("seed", [5, 13])
    def test_crash_and_recovery_match_exactly(self, seed):
        engine, ref = drive_pair(seed, crash_at=4)
        assert engine.ledger.fault_promotions > 0
        assert_twins_equal(engine, ref)

    def test_unlimited_admission_sheds_nothing(self):
        engine, ref = drive_pair(2, limit=None)
        assert engine.ledger.shed == 0
        assert_twins_equal(engine, ref)


class TestColumnarVsRichLive:
    """The tentpole proof: both live backends render identical reports."""

    @pytest.mark.parametrize("population", overlap_scales())
    def test_reports_identical_byte_for_byte(self, population):
        spec = differential_spec(population)
        col = run_columnar(spec, seed=11)
        rich = run_rich(spec, seed=11)
        assert col.report.render() == rich.report.render()
        # settlement identities close on BOTH sides, wire included
        assert col.report.settled and col.report.wire_settled
        assert rich.report.settled and rich.report.wire_settled
        # per-class counters match element-wise, not just as rendered text
        assert col.report.class_calls == rich.report.class_calls
        assert col.report.value_checksum == rich.report.value_checksum

    def test_columnar_escalation_actually_happened(self):
        spec = differential_spec(100)
        col = run_columnar(spec, seed=11)
        d = col.diagnostics
        assert d["promotions"] > 0 and d["demotions"] == d["promotions"]
        assert d["rich_calls"] > 0
        assert d["escalated_by_class_match"]
        assert d["failures"] == []
        # every id demoted back: the frame ends all-bulk
        assert d["band_histogram"] == {
            "bulk": spec.population,
            "promoted": 0,
            "lost": 0,
        }

    def test_seed_changes_the_plan_and_the_checksum(self):
        spec = differential_spec(100)
        a = run_columnar(spec, seed=1)
        b = run_columnar(spec, seed=2)
        assert a.report.value_checksum != b.report.value_checksum

    def test_same_seed_is_deterministic(self):
        spec = differential_spec(100)
        a = run_columnar(spec, seed=5)
        b = run_columnar(spec, seed=5)
        assert a.report.render() == b.report.render()
        assert a.sim_events == b.sim_events
