"""Integration: call-environment propagation, trust boundaries, lifecycle."""

import pytest

from repro import errors
from repro.core.object_base import LegionObjectImpl, legion_method
from repro.security.mayi import TrustSetPolicy


class EnvProbe(LegionObjectImpl):
    """Records the environments of the calls it receives."""

    def __init__(self):
        self.seen = []

    @legion_method("Observe()")
    def observe(self, *, ctx=None):
        self.seen.append(ctx.env)

    @legion_method("Relay(LOID)")
    def relay(self, target, *, ctx=None):
        # Forward: the paper's RA must survive the hop; CA becomes us.
        yield from self.runtime.invoke(
            target, "Observe", env=ctx.nested_env(self.loid)
        )


class TestEnvironmentPropagation:
    def test_ra_preserved_ca_rewritten_across_hops(self, fresh_legion):
        system, _cls = fresh_legion
        probe_cls = system.create_class("EnvProbe", factory=EnvProbe)
        relay = system.call(probe_cls.loid, "Create", {})
        sink = system.call(probe_cls.loid, "Create", {})
        system.call(relay.loid, "Relay", sink.loid)

        # Find the sink's implementation to inspect what it saw.
        sink_impl = None
        for host_server in system.host_servers.values():
            entry = host_server.impl.processes.find(sink.loid)
            if entry is not None:
                sink_impl = entry.server.impl
        assert sink_impl is not None and sink_impl.seen
        env = sink_impl.seen[0]
        assert env.responsible_agent == system.console.loid  # originator
        assert env.calling_agent == relay.loid  # immediate caller

    def test_trust_policy_sees_original_principal_through_relay(self, fresh_legion):
        system, _cls = fresh_legion
        probe_cls = system.create_class("EnvProbe2", factory=EnvProbe)
        relay = system.call(probe_cls.loid, "Create", {})
        sink = system.call(probe_cls.loid, "Create", {})

        # Gate the sink on the *responsible agent* being the console.
        policy = TrustSetPolicy()
        policy.trust(system.console.loid)
        for host_server in system.host_servers.values():
            entry = host_server.impl.processes.find(sink.loid)
            if entry is not None:
                entry.server.impl.mayi_policy = policy

        # Console-initiated call, relayed: admitted (RA == console).
        system.call(relay.loid, "Relay", sink.loid)

        # Another client's relayed call: refused at the sink's MayI even
        # though the immediate caller (the relay) is the same object.
        stranger = system.new_client("stranger")
        with pytest.raises(errors.SecurityDenied):
            system.call(relay.loid, "Relay", sink.loid, client=stranger)


class TestLifecycleUnderLoad:
    def test_interleaved_calls_and_deactivations_never_lose_updates(
        self, fresh_legion
    ):
        system, cls = fresh_legion
        binding = system.call(cls.loid, "Create", {})
        row = system.call(cls.loid, "GetRow", binding.loid)
        magistrate = row.current_magistrates[0]
        total = 0
        for i in range(10):
            system.call(binding.loid, "Increment", i)
            total += i
            if i % 3 == 0:
                system.call(magistrate, "Deactivate", binding.loid)
        assert system.call(binding.loid, "Get") == total

    def test_many_objects_spread_over_hosts(self, fresh_legion):
        system, cls = fresh_legion
        bindings = [system.call(cls.loid, "Create", {}) for _ in range(12)]
        hosts_used = {b.address.primary().host for b in bindings}
        assert len(hosts_used) >= 3  # round-robin over magistrates+hosts
        for i, b in enumerate(bindings):
            assert system.call(b.loid, "Increment", i) == i

    def test_concurrent_clients_against_one_object(self, fresh_legion):
        from repro.workloads.generators import TrafficDriver

        system, cls = fresh_legion
        binding = system.call(cls.loid, "Create", {})
        clients = [system.new_client(f"load{i}") for i in range(5)]
        driver = TrafficDriver(
            system.kernel,
            clients,
            choose_target=lambda _c: binding.loid,
            method="Increment",
            args=(1,),
            calls_per_client=20,
            think_time=0.5,
        )
        stats = system.kernel.run_until_complete(driver.start())
        assert stats.success_rate == 1.0
        assert system.call(binding.loid, "Get") == 100


class TestDerivedMagistratePolicies:
    def test_custom_magistrate_class_via_subclassing(self, fresh_legion):
        """Fig. 9: sites derive their own magistrate classes."""
        from repro.jurisdiction.magistrate import MagistrateImpl

        class ParanoidMagistrate(MagistrateImpl):
            def admit_opr(self, opr):
                return opr.annotations.get("certified", False)

        system, cls = fresh_legion
        site = system.sites[1].name
        old_server = system.magistrates[site]
        paranoid = ParanoidMagistrate(old_server.impl.jurisdiction)
        paranoid.hosts = list(old_server.impl.hosts)
        paranoid.loid = old_server.loid
        paranoid.runtime = old_server.runtime
        paranoid.services = old_server.services
        old_server.impl = paranoid

        with pytest.raises(errors.RequestRefused):
            system.call(cls.loid, "Create", {"magistrate": old_server.loid})
