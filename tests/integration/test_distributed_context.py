"""The name space as Legion objects: distributed, persistent directories."""

import pytest

from repro import errors
from repro.naming.context_object import ContextObjectImpl


@pytest.fixture
def namespace(fresh_legion):
    """A root context plus two site-local sub-contexts, all Legion objects."""
    system, counter_cls = fresh_legion
    ctx_cls = system.create_class("ContextObject", factory=ContextObjectImpl)
    site0, site1 = system.sites[0].name, system.sites[1].name
    root = system.call(
        ctx_cls.loid,
        "Create",
        {"init": {"name": "/"}, "magistrate": system.magistrates[site0].loid},
    )
    home = system.call(
        ctx_cls.loid,
        "Create",
        {"init": {"name": "/home"}, "magistrate": system.magistrates[site1].loid},
    )
    system.call(root.loid, "Mount", "home", home.loid)
    return system, counter_cls, ctx_cls, root, home


class TestDistributedContext:
    def test_cross_object_path_lookup(self, namespace):
        system, counter_cls, _ctx_cls, root, home = namespace
        target = system.call(counter_cls.loid, "Create", {})
        system.call(home.loid, "Bind", "alice", target.loid)
        resolved = system.call(root.loid, "LookupPath", "home/alice")
        assert resolved == target.loid
        # End to end: resolve by name, then call the object.
        assert system.call(resolved, "Increment", 2) == 2

    def test_bind_path_routes_to_the_right_directory(self, namespace):
        system, counter_cls, _ctx_cls, root, home = namespace
        target = system.call(counter_cls.loid, "Create", {})
        system.call(root.loid, "BindPath", "home/bob", target.loid)
        assert system.call(home.loid, "Lookup", "bob") == target.loid

    def test_deep_chain_across_three_objects(self, namespace):
        system, counter_cls, ctx_cls, root, home = namespace
        projects = system.call(
            ctx_cls.loid, "Create", {"init": {"name": "/home/projects"}}
        )
        system.call(home.loid, "Mount", "projects", projects.loid)
        target = system.call(counter_cls.loid, "Create", {})
        system.call(root.loid, "BindPath", "home/projects/legion", target.loid)
        assert (
            system.call(root.loid, "LookupPath", "home/projects/legion")
            == target.loid
        )

    def test_lookup_through_inert_directory_reactivates_it(self, namespace):
        system, counter_cls, ctx_cls, root, home = namespace
        target = system.call(counter_cls.loid, "Create", {})
        system.call(home.loid, "Bind", "alice", target.loid)
        # Deactivate the /home directory object; the recursive lookup
        # re-activates it transparently (activate-on-reference).
        row = system.call(ctx_cls.loid, "GetRow", home.loid)
        system.call(row.current_magistrates[0], "Deactivate", home.loid)
        assert (
            system.call(root.loid, "LookupPath", "home/alice") == target.loid
        )

    def test_directory_state_survives_migration(self, namespace):
        system, counter_cls, ctx_cls, root, home = namespace
        target = system.call(counter_cls.loid, "Create", {})
        system.call(home.loid, "Bind", "alice", target.loid)
        row = system.call(ctx_cls.loid, "GetRow", home.loid)
        source = row.current_magistrates[0]
        dest = [m.loid for m in system.magistrates.values() if m != source][0]
        if dest == source:
            dest = [m.loid for m in system.magistrates.values() if m.loid != source][0]
        system.call(source, "Move", home.loid, dest)
        assert system.call(root.loid, "LookupPath", "home/alice") == target.loid

    def test_errors(self, namespace):
        system, counter_cls, _ctx_cls, root, home = namespace
        with pytest.raises(errors.ContextError):
            system.call(root.loid, "LookupPath", "nowhere/at/all")
        target = system.call(counter_cls.loid, "Create", {})
        system.call(home.loid, "Bind", "leaf", target.loid)
        with pytest.raises(errors.ContextError):
            # 'leaf' is not a sub-context; descending through it fails.
            system.call(root.loid, "LookupPath", "home/leaf/deeper")
        with pytest.raises(errors.ContextError):
            system.call(home.loid, "Bind", "leaf", target.loid)  # duplicate
        with pytest.raises(errors.ContextError):
            system.call(home.loid, "Unbind", "ghost")

    def test_list_marks_subcontexts(self, namespace):
        system, counter_cls, _ctx_cls, root, home = namespace
        target = system.call(counter_cls.loid, "Create", {})
        system.call(root.loid, "Bind", "motd", target.loid)
        entries = system.call(root.loid, "List")
        assert ("home", True) in entries
        assert ("motd", False) in entries
