"""Selective inheritance: the paper's component-selection footnote.

"Legion may allow a class to select the components that it wishes to
inherit from its superclass." (section 2.1, footnote)  Implemented for
InheritFrom bases: ``InheritFrom(base, only=[names])``.
"""

import pytest

from repro import errors
from repro.core.object_base import LegionObjectImpl, legion_method


class Toolbox(LegionObjectImpl):
    """A base offering two tools; inheritors may want only one."""

    @legion_method("string Hammer()")
    def hammer(self):
        return "bang"

    @legion_method("string Saw()")
    def saw(self):
        return "zzzip"


@pytest.fixture
def toolbox_class(fresh_legion):
    system, _cls = fresh_legion
    return system, system.create_class("Toolbox", factory=Toolbox)


class TestSelectiveInheritFrom:
    def test_selected_method_present_others_absent(self, toolbox_class):
        system, toolbox = toolbox_class
        chooser = system.create_class("Chooser", instance_factory="app.Counter")
        system.call(chooser.loid, "InheritFrom", toolbox.loid, ["Hammer"])
        instance = system.call(chooser.loid, "Create", {})
        assert system.call(instance.loid, "Hammer") == "bang"
        with pytest.raises(errors.MethodNotFound):
            system.call(instance.loid, "Saw")

    def test_interface_reflects_selection(self, toolbox_class):
        system, toolbox = toolbox_class
        chooser = system.create_class("Chooser2", instance_factory="app.Counter")
        system.call(chooser.loid, "InheritFrom", toolbox.loid, ["Saw"])
        iface = system.call(chooser.loid, "GetInstanceInterface")
        assert iface.has_method("Saw")
        assert not iface.has_method("Hammer")
        instance = system.call(chooser.loid, "Create", {})
        live = system.call(instance.loid, "GetInterface")
        assert live.has_method("Saw")
        assert not live.has_method("Hammer")

    def test_object_mandatory_methods_cannot_be_selected_away(self, toolbox_class):
        system, toolbox = toolbox_class
        chooser = system.create_class("Chooser3", instance_factory="app.Counter")
        system.call(chooser.loid, "InheritFrom", toolbox.loid, ["Hammer"])
        instance = system.call(chooser.loid, "Create", {})
        # Mandatory functions still answer even though not in `only`.
        assert system.call(instance.loid, "Ping") == "pong"
        assert system.call(instance.loid, "GetInterface").has_method("SaveState")

    def test_unrestricted_inherit_unchanged(self, toolbox_class):
        system, toolbox = toolbox_class
        chooser = system.create_class("Chooser4", instance_factory="app.Counter")
        system.call(chooser.loid, "InheritFrom", toolbox.loid)
        instance = system.call(chooser.loid, "Create", {})
        assert system.call(instance.loid, "Hammer") == "bang"
        assert system.call(instance.loid, "Saw") == "zzzip"

    def test_selection_survives_migration(self, toolbox_class):
        system, toolbox = toolbox_class
        chooser = system.create_class("Chooser5", instance_factory="app.Counter")
        system.call(chooser.loid, "InheritFrom", toolbox.loid, ["Hammer"])
        instance = system.call(chooser.loid, "Create", {})
        row = system.call(chooser.loid, "GetRow", instance.loid)
        source = row.current_magistrates[0]
        target = [
            m.loid for m in system.magistrates.values() if m.loid != source
        ][0]
        system.call(source, "Move", instance.loid, target)
        # The exposure filter is part of the OPR's factory chain, so it
        # survives the state round-trip at the new jurisdiction.
        assert system.call(instance.loid, "Hammer") == "bang"
        with pytest.raises(errors.MethodNotFound):
            system.call(instance.loid, "Saw")

    def test_selection_inherited_by_subclasses(self, toolbox_class):
        system, toolbox = toolbox_class
        chooser = system.create_class("Chooser6", instance_factory="app.Counter")
        system.call(chooser.loid, "InheritFrom", toolbox.loid, ["Hammer"])
        sub = system.call(chooser.loid, "Derive", "SubChooser", {})
        instance = system.call(sub.loid, "Create", {})
        assert system.call(instance.loid, "Hammer") == "bang"
        with pytest.raises(errors.MethodNotFound):
            system.call(instance.loid, "Saw")
