"""End-to-end behaviour over a lossy wide-area network.

The paper assumes "standard protocols and the communication facilities of
host operating systems" (3.3) but expects the communication layer to cope
with failure (4.1.4).  These tests run real workloads with probabilistic
message loss and verify that deadline + refresh + retry recover, and that
accounting stays truthful.
"""

import pytest

from repro import errors
from repro.net.latency import LinkClass
from repro.system.legion import LegionSystem, SiteSpec
from repro.workloads.apps import CounterImpl


@pytest.fixture
def lossy_legion():
    system = LegionSystem.build(
        [SiteSpec("east", hosts=2), SiteSpec("west", hosts=2)], seed=99
    )
    cls = system.create_class("Counter", factory=CounterImpl)
    return system, cls


class TestLossyNetwork:
    def test_calls_recover_from_moderate_loss(self, lossy_legion):
        system, cls = lossy_legion
        target = system.call(cls.loid, "Create", {})
        client = system.new_client("lossy")
        system.call(target.loid, "Ping", client=client)  # warm, lossless

        # 20% WAN loss from now on; calls carry a deadline so silent
        # drops become timeouts, and timeouts drive retries.
        system.network.drop_probability[LinkClass.WIDE_AREA] = 0.2
        successes = 0
        attempts = 30
        for _i in range(attempts):
            try:
                system.call(target.loid, "Ping", client=client, timeout=200.0)
                successes += 1
            except errors.LegionError:
                pass
        # With 4 retries per call at 20% loss, failures should be rare.
        assert successes >= attempts * 0.9, f"only {successes}/{attempts}"
        assert client.runtime.stats.timeouts > 0  # loss actually happened
        assert system.network.stats.drops > 0

    def test_total_loss_yields_clean_error_not_hang(self, lossy_legion):
        system, cls = lossy_legion
        target = system.call(cls.loid, "Create", {})
        client = system.new_client("blackhole")
        system.call(target.loid, "Ping", client=client)
        for link in LinkClass:
            system.network.drop_probability[link] = 1.0
        with pytest.raises(errors.BindingNotFound):
            system.call(target.loid, "Ping", client=client, timeout=50.0)
        # Recovery after the network heals.
        for link in LinkClass:
            system.network.drop_probability[link] = 0.0
        assert system.call(target.loid, "Ping", client=client) == "pong"

    def test_state_updates_not_duplicated_by_reply_loss(self, lossy_legion):
        """A lost REPLY means the caller may retry an already-executed
        method.  The reproduction keeps the paper's at-least-once
        semantics visible rather than hiding it: this test documents the
        behaviour (increments may exceed the success count, never less).
        """
        system, cls = lossy_legion
        target = system.call(cls.loid, "Create", {})
        client = system.new_client("retry")
        system.call(target.loid, "Ping", client=client)
        system.network.drop_probability[LinkClass.WIDE_AREA] = 0.15
        successes = 0
        for _i in range(20):
            try:
                system.call(target.loid, "Increment", 1, client=client, timeout=200.0)
                successes += 1
            except errors.LegionError:
                pass
        system.network.drop_probability[LinkClass.WIDE_AREA] = 0.0
        value = system.call(target.loid, "Get", client=client)
        assert value >= successes  # at-least-once: re-executions possible
