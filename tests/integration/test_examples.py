"""Every example script runs clean end-to-end (regression guard).

The examples are part of the public deliverable; these tests execute them
in-process (capturing stdout) so a refactor that breaks an example breaks
the suite.
"""

import io
import runpy
import sys
from contextlib import redirect_stdout
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"

EXPECTED_MARKERS = {
    "quickstart.py": ["Increment(5)  -> 5", "state preserved"],
    "site_autonomy.py": [
        "REFUSED (SecurityDenied)",
        "REFUSED (RequestRefused)",
        "ADMITTED",
    ],
    "replication_fault_tolerance.py": [
        "masked the failure",
        "repaired group",
        "coordinator Get('answer') -> 42",
    ],
    "migration_demo.py": [
        "B's state survived",
        "A answers from its new home",
    ],
    "wide_area_binding.py": [
        "100% success",
        "tree:",
    ],
    "distributed_files.py": [
        "reactivated",
        "speedup from locality",
    ],
}


@pytest.mark.parametrize("script", sorted(EXPECTED_MARKERS), ids=lambda s: s[:-3])
def test_example_runs_and_prints_its_story(script):
    path = EXAMPLES_DIR / script
    assert path.exists(), f"missing example {script}"
    buffer = io.StringIO()
    argv = sys.argv
    sys.argv = [str(path)]
    try:
        with redirect_stdout(buffer):
            runpy.run_path(str(path), run_name="__main__")
    finally:
        sys.argv = argv
    output = buffer.getvalue()
    for marker in EXPECTED_MARKERS[script]:
        assert marker in output, f"{script}: expected {marker!r} in output"
    assert "Traceback" not in output
