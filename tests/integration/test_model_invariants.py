"""System-wide invariants the paper mandates, checked over a live build.

These are the sentences of the paper that must hold *everywhere*, not in
one scenario: mandatory interfaces, the single-class rule, the rooting of
every class at LegionObject, and the LOID conventions.
"""

import pytest

from repro.core.legion_class import CLASS_MANDATORY_INTERFACE
from repro.core.object_base import OBJECT_MANDATORY_INTERFACE
from repro.workloads.apps import KVStoreImpl


@pytest.fixture(scope="module")
def populated(legion):
    """The shared system, enriched with a deeper class tree + instances."""
    system, counter_cls = legion
    kv_cls = system.create_class("InvKV", factory=KVStoreImpl)
    sub = system.call(counter_cls.loid, "Derive", "InvSub", {})
    subsub = system.call(sub.loid, "Derive", "InvSubSub", {})
    instances = [
        system.call(counter_cls.loid, "Create", {}),
        system.call(kv_cls.loid, "Create", {}),
        system.call(sub.loid, "Create", {}),
        system.call(subsub.loid, "Create", {}),
    ]
    classes = [counter_cls.loid, kv_cls.loid, sub.loid, subsub.loid]
    return system, classes, instances


class TestMandatoryInterfaces:
    def test_every_instance_exports_object_mandatory(self, populated):
        system, _classes, instances = populated
        for binding in instances:
            live = system.call(binding.loid, "GetInterface")
            assert live.conforms_to(OBJECT_MANDATORY_INTERFACE), str(binding.loid)

    def test_every_class_object_exports_class_mandatory(self, populated):
        system, classes, _instances = populated
        all_class_loids = list(classes) + [
            system.core.loid(role) for role in system.core.servers
        ]
        for loid in all_class_loids:
            live = system.call(loid, "GetInterface")
            assert live.conforms_to(CLASS_MANDATORY_INTERFACE), str(loid)
            # "LegionClass is derived from LegionObject; thus, classes are
            # objects in Legion": class objects are objects too.
            assert live.conforms_to(OBJECT_MANDATORY_INTERFACE), str(loid)

    def test_class_mandatory_names_match_the_paper(self):
        for name in ("Create", "Derive", "InheritFrom", "Delete", "GetBinding", "GetInterface"):
            assert CLASS_MANDATORY_INTERFACE.has_method(name), name


class TestRelationsInvariants:
    def test_every_class_roots_at_legion_object(self, populated):
        system, classes, _instances = populated
        relations = system.services.relations
        legion_object = system.core.loid("LegionObject")
        for loid in classes:
            assert relations.ancestry(loid)[-1] == legion_object, str(loid)
        for server in system.standard_classes.values():
            assert relations.ancestry(server.loid)[-1] == legion_object

    def test_every_instance_has_exactly_one_class(self, populated):
        system, _classes, instances = populated
        relations = system.services.relations
        for binding in instances:
            assert relations.class_of(binding.loid) is not None

    def test_the_only_sink_is_legion_object(self, populated):
        system, _classes, _instances = populated
        assert system.services.relations.sinks() == [
            system.core.loid("LegionObject")
        ]


class TestLOIDConventions:
    def test_class_specific_zero_iff_class(self, populated):
        system, classes, instances = populated
        for loid in classes:
            assert loid.class_specific == 0 and loid.is_class
        for binding in instances:
            assert binding.loid.class_specific != 0 and not binding.loid.is_class

    def test_instances_carry_their_class_id(self, populated):
        system, _classes, instances = populated
        relations = system.services.relations
        for binding in instances:
            cls = relations.class_of(binding.loid)
            assert binding.loid.class_id == cls.class_id

    def test_every_loid_key_verifies_under_the_system_secret(self, populated):
        system, classes, instances = populated
        secret = system.services.secret
        for loid in classes:
            assert loid.verify_key(secret)
        for binding in instances:
            assert binding.loid.verify_key(secret)


class TestLogicalTableInvariants:
    def test_rows_exist_for_every_created_object(self, populated):
        system, classes, instances = populated
        relations = system.services.relations
        for binding in instances:
            cls = relations.class_of(binding.loid)
            row = system.call(cls, "GetRow", binding.loid)
            assert row.loid == binding.loid
            assert row.current_magistrates, "created objects have a magistrate"

    def test_active_rows_addresses_actually_answer(self, populated):
        system, classes, _instances = populated
        for class_loid in classes:
            server = None
            # Reach the class impl directly for table introspection.
            for host_server in system.host_servers.values():
                entry = host_server.impl.processes.find(class_loid)
                if entry is not None:
                    server = entry.server
            if server is None:
                continue
            for row in server.impl.table.active_rows():
                assert system.call(row.loid, "Ping") == "pong"
