"""Integration: the full binding walk of Fig. 17 and its cache effects."""

import pytest

from repro import errors
from repro.metrics.counters import ComponentId, ComponentKind, MetricsRegistry


class TestFig17Walk:
    def test_cold_walk_touches_agent_and_class(self, fresh_legion):
        system, cls = fresh_legion
        binding = system.call(cls.loid, "Create", {})
        client = system.new_client("walker")
        system.reset_measurements()
        system.call(binding.loid, "Ping", client=client)
        metrics = system.services.metrics
        agent_load = metrics.totals_by_kind().get(ComponentKind.BINDING_AGENT, 0)
        class_load = metrics.totals_by_kind().get(ComponentKind.CLASS_OBJECT, 0)
        assert agent_load >= 1  # the client consulted its Binding Agent
        assert class_load >= 1  # the agent consulted class C

    def test_warm_walk_touches_nobody(self, fresh_legion):
        system, cls = fresh_legion
        binding = system.call(cls.loid, "Create", {})
        client = system.new_client("walker2")
        system.call(binding.loid, "Ping", client=client)
        system.reset_measurements()
        system.call(binding.loid, "Ping", client=client)
        metrics = system.services.metrics
        assert metrics.totals_by_kind().get(ComponentKind.BINDING_AGENT, 0) == 0
        assert metrics.totals_by_kind().get(ComponentKind.CLASS_OBJECT, 0) == 0
        assert metrics.totals_by_kind().get(ComponentKind.LEGION_CLASS, 0) == 0

    def test_every_tier_caches_the_result(self, fresh_legion):
        system, cls = fresh_legion
        binding = system.call(cls.loid, "Create", {})
        client = system.new_client("walker3")
        agent = system.agents[system.sites[0].name]
        assert client.runtime.cache.lookup(binding.loid, system.kernel.now) is None
        system.call(binding.loid, "Ping", client=client)
        # Fig. 17's shaded cells: the client AND its agent now hold it.
        assert client.runtime.cache.lookup(binding.loid, system.kernel.now)
        assert agent.runtime.cache.lookup(binding.loid, system.kernel.now)

    def test_reference_to_inert_object_activates_it(self, fresh_legion):
        system, cls = fresh_legion
        binding = system.call(cls.loid, "Create", {})
        system.call(binding.loid, "Increment", 4)
        row = system.call(cls.loid, "GetRow", binding.loid)
        magistrate = row.current_magistrates[0]
        system.call(magistrate, "Deactivate", binding.loid)
        # A *fresh* client (clean caches) referencing the LOID reactivates.
        client = system.new_client("walker4")
        assert system.call(binding.loid, "Get", client=client) == 4
        from repro.jurisdiction.magistrate import ObjectState

        assert (
            system.call(magistrate, "GetObjectState", binding.loid)
            is ObjectState.ACTIVE
        )

    def test_deleted_object_definitively_unresolvable(self, fresh_legion):
        system, cls = fresh_legion
        binding = system.call(cls.loid, "Create", {})
        system.call(cls.loid, "Delete", binding.loid)
        client = system.new_client("walker5")
        with pytest.raises(errors.ObjectDeleted):
            system.call(binding.loid, "Ping", client=client)


class TestDeepClassChains:
    def test_resolving_instance_of_deep_subclass(self, fresh_legion):
        # B is an instance of Sub3 < Sub2 < Sub1 < Counter < LegionObject;
        # locating Sub3 walks responsibility pairs recursively (4.1.3).
        system, cls = fresh_legion
        current = cls
        for i in range(3):
            current = system.call(current.loid, "Derive", f"Deep{i}", {})
        leaf = system.call(current.loid, "Create", {})
        client = system.new_client("deep-walker")
        assert system.call(leaf.loid, "Increment", 1, client=client) == 1

    def test_subclass_instances_use_inherited_factory(self, fresh_legion):
        system, cls = fresh_legion
        sub = system.call(cls.loid, "Derive", "InheritImpl", {})
        instance = system.call(sub.loid, "Create", {"init": {"start": 3}})
        assert instance.loid.class_id == sub.loid.class_id
        assert system.call(instance.loid, "Get") == 3


class TestCrossSite:
    def test_remote_site_client_resolves_through_own_agent(self, fresh_legion):
        system, cls = fresh_legion
        site0, site1 = system.sites[0].name, system.sites[1].name
        target = system.call(
            cls.loid, "Create", {"magistrate": system.magistrates[site0].loid}
        )
        remote_client = system.new_client("remote", site=site1)
        system.reset_measurements()
        system.call(target.loid, "Ping", client=remote_client)
        metrics = system.services.metrics
        # The remote client consulted ITS site's agent, not site0's.
        assert (
            metrics.get(
                ComponentId(ComponentKind.BINDING_AGENT, site1),
                MetricsRegistry.REQUESTS,
            )
            >= 1
        )
        assert (
            metrics.get(
                ComponentId(ComponentKind.BINDING_AGENT, site0),
                MetricsRegistry.REQUESTS,
            )
            == 0
        )

    def test_partition_isolates_then_heals(self, fresh_legion):
        system, cls = fresh_legion
        site0, site1 = system.sites[0].name, system.sites[1].name
        target = system.call(
            cls.loid, "Create", {"magistrate": system.magistrates[site0].loid}
        )
        remote_client = system.new_client("partitioned", site=site1)
        system.call(target.loid, "Ping", client=remote_client)  # warm path
        system.network.partition(site0, site1)
        with pytest.raises(errors.LegionError):
            system.call(target.loid, "Ping", client=remote_client)
        system.network.heal(site0, site1)
        assert system.call(target.loid, "Ping", client=remote_client) == "pong"
