"""Combined-adversity stress: churn + message loss + a transient partition.

Not a benchmark -- a falsifier.  The invariant under attack: the binding
machinery may slow down or (during a partition) fail *visibly*, but it
never returns a wrong answer, never corrupts object state, and always
recovers once conditions improve.
"""

import pytest

from repro.net.latency import LinkClass
from repro.system.legion import LegionSystem, SiteSpec
from repro.workloads.apps import CounterImpl
from repro.workloads.generators import ChurnDriver, TrafficDriver


class TestCombinedAdversity:
    def test_no_lost_updates_and_full_recovery(self):
        system = LegionSystem.build(
            [SiteSpec("east", hosts=3), SiteSpec("west", hosts=3)], seed=77
        )
        cls = system.create_class("Counter", factory=CounterImpl)
        objects = [system.create_instance(cls.loid) for _ in range(8)]
        loids = [b.loid for b in objects]
        clients = [
            system.new_client(f"stress-{i}", site=system.sites[i % 2].name)
            for i in range(4)
        ]
        rng = system.services.rng.stream("stress")

        # Phase 1: churn + 5% WAN loss.
        system.network.drop_probability[LinkClass.WIDE_AREA] = 0.05
        churn = ChurnDriver(
            system.kernel,
            system.new_client("stress-churn"),
            loids,
            [m.loid for m in system.magistrates.values()],
            cls.loid,
            rng=system.services.rng.stream("stress-churn"),
            interval=60.0,
            rounds=10**6,
        )
        churn_proc = system.kernel.spawn_process(churn._loop())
        traffic = TrafficDriver(
            system.kernel,
            clients,
            choose_target=lambda _c: loids[rng.randrange(len(loids))],
            method="Increment",
            args=(1,),
            calls_per_client=20,
            think_time=10.0,
            timeout=500.0,
        )
        stats = system.kernel.run_until_complete(
            traffic.start(), max_events=10_000_000
        )
        churn_proc.kill()
        system.kernel.run()

        # Correctness half: every success really happened, exactly once or
        # more (at-least-once), never silently dropped: the sum of all
        # counters >= successes.
        total = sum(system.call(loid, "Get") for loid in loids)
        assert total >= stats.calls_succeeded
        assert stats.calls_succeeded >= stats.calls_issued * 0.9

        # Phase 2: a partition makes cross-site work fail VISIBLY...
        system.network.drop_probability[LinkClass.WIDE_AREA] = 0.0
        system.network.partition("east", "west")
        east_client = system.new_client("post-east", site="east")
        outcomes = []
        for loid in loids:
            try:
                system.call(loid, "Ping", client=east_client)
                outcomes.append("ok")
            except Exception:
                outcomes.append("fail")
        assert "fail" in outcomes  # west-hosted objects are unreachable

        # ...and everything heals afterwards.
        system.network.heal_all()
        for loid in loids:
            assert system.call(loid, "Ping", client=east_client) == "pong"

    def test_state_integrity_through_hostile_lifecycle(self):
        """Interleave increments with forced deactivations, moves, a crash
        + reap, and a reactivation: the counter value must track exactly
        the acknowledged increments."""
        system = LegionSystem.build(
            [SiteSpec("a", hosts=2), SiteSpec("b", hosts=2)], seed=5
        )
        cls = system.create_class("Counter", factory=CounterImpl)
        binding = system.call(cls.loid, "Create", {})
        loid = binding.loid
        expected = 0

        def magistrate_of():
            return system.call(cls.loid, "GetRow", loid).current_magistrates[0]

        for round_no in range(6):
            expected = system.call(loid, "Increment", round_no + 1)
            if round_no % 3 == 0:
                system.call(magistrate_of(), "Deactivate", loid)
            elif round_no % 3 == 1:
                source = magistrate_of()
                target = [
                    m.loid
                    for m in system.magistrates.values()
                    if m.loid != source
                ][0]
                system.call(source, "Move", loid, target)
        assert system.call(loid, "Get") == expected

        # Crash without a saved OPR: the object is genuinely lost, and the
        # system says so rather than fabricating state.
        for host_server in system.host_servers.values():
            entry = host_server.impl.processes.find(loid)
            if entry is not None:
                host_server.impl.crash_object(loid, "pulled the plug")
                reap = system.spawn(host_server.impl.reap())
                system.kernel.run_until_complete(reap)
                break
        from repro import errors

        fresh = system.new_client("witness")
        with pytest.raises(errors.LegionError):
            system.call(loid, "Get", client=fresh)
