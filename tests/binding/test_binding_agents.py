"""Binding Agent behaviour (3.6, Fig. 15) against a live system."""

import pytest

from repro import errors
from repro.naming.binding import Binding


class TestGetBinding:
    def test_cache_miss_escalates_to_class_then_hits(self, fresh_legion):
        system, cls = fresh_legion
        agent = system.agents[system.sites[0].name]
        binding = system.call(cls.loid, "Create", {})
        system.call(agent.loid, "CacheSize")  # warm console→agent resolution
        agent.impl.agent_stats.reset()
        first = system.call(agent.loid, "GetBinding", binding.loid)
        second = system.call(agent.loid, "GetBinding", binding.loid)
        assert first.address == binding.address == second.address
        assert agent.impl.agent_stats.class_escalations == 1
        assert agent.impl.agent_stats.cache_hits == 1

    def test_get_binding_for_class_object(self, fresh_legion):
        system, cls = fresh_legion
        agent = system.agents[system.sites[1].name]
        result = system.call(agent.loid, "GetBinding", cls.loid)
        assert result.loid == cls.loid

    def test_stale_binding_refresh_overload(self, fresh_legion):
        system, cls = fresh_legion
        agent = system.agents[system.sites[0].name]
        binding = system.call(cls.loid, "Create", {})
        system.call(agent.loid, "GetBinding", binding.loid)  # cache it
        row = system.call(cls.loid, "GetRow", binding.loid)
        system.call(row.current_magistrates[0], "Deactivate", binding.loid)
        # GetBinding(binding): the paper's refresh path -- must not hand
        # back the same dead address.
        fresh = system.call(agent.loid, "GetBinding", binding)
        assert fresh.address != binding.address
        assert system.call(binding.loid, "Ping") == "pong"

    def test_unknown_loid_propagates_error(self, fresh_legion):
        system, cls = fresh_legion
        from repro.naming.loid import LOID

        agent = system.agents[system.sites[0].name]
        ghost = LOID.for_instance(cls.loid.class_id, 55555, system.services.secret)
        with pytest.raises(errors.UnknownObject):
            system.call(agent.loid, "GetBinding", ghost)


class TestAddInvalidate:
    def test_add_binding_preloads_cache(self, fresh_legion):
        system, cls = fresh_legion
        agent = system.agents[system.sites[0].name]
        binding = system.call(cls.loid, "Create", {})
        system.call(agent.loid, "InvalidateBinding", binding.loid)
        system.call(agent.loid, "AddBinding", binding)
        agent.impl.agent_stats.reset()
        system.call(agent.loid, "GetBinding", binding.loid)
        assert agent.impl.agent_stats.cache_hits == 1

    def test_invalidate_by_loid(self, fresh_legion):
        system, cls = fresh_legion
        agent = system.agents[system.sites[0].name]
        binding = system.call(cls.loid, "Create", {})
        system.call(agent.loid, "GetBinding", binding.loid)
        size_before = system.call(agent.loid, "CacheSize")
        system.call(agent.loid, "InvalidateBinding", binding.loid)
        assert system.call(agent.loid, "CacheSize") == size_before - 1

    def test_invalidate_exact_spares_fresh(self, fresh_legion):
        system, cls = fresh_legion
        agent = system.agents[system.sites[0].name]
        binding = system.call(cls.loid, "Create", {})
        current = system.call(agent.loid, "GetBinding", binding.loid)
        stale = Binding(current.loid, system.agents[system.sites[1].name].address)
        system.call(agent.loid, "InvalidateBinding", stale)  # exact mismatch
        agent.impl.agent_stats.reset()
        system.call(agent.loid, "GetBinding", binding.loid)
        assert agent.impl.agent_stats.cache_hits == 1  # still cached


class TestHierarchy:
    def test_leaf_escalates_to_parent_not_class(self, fresh_legion):
        from repro.experiments.e3_combining_tree import _spawn_agent_on

        system, cls = fresh_legion
        binding = system.call(cls.loid, "Create", {})
        root = _spawn_agent_on(system, None, "tree-root")
        leaf = _spawn_agent_on(system, root.binding(), "tree-leaf")
        result = system.call(leaf.loid, "GetBinding", binding.loid)
        assert result.address == binding.address
        assert leaf.impl.agent_stats.parent_escalations == 1
        assert leaf.impl.agent_stats.class_escalations == 0
        assert root.impl.agent_stats.class_escalations == 1

    def test_build_agent_tree_shapes(self):
        from repro.binding.hierarchy import build_agent_tree
        from repro.naming.binding import Binding as B
        from repro.naming.loid import LOID
        from repro.net.address import ObjectAddress, ObjectAddressElement

        counter = [0]

        def spawn(parent, level, index):
            counter[0] += 1
            return B(
                LOID.for_instance(60, counter[0]),
                ObjectAddress.single(
                    ObjectAddressElement.sim(counter[0], 1024)
                ),
            )

        tree = build_agent_tree(spawn, leaf_count=8, fanout=2)
        assert len(tree.leaves) == 8
        assert tree.tiers[0] == [tree.root]
        # 1 + 2 + 4 + 8
        assert tree.agent_count == 15
        assert tree.depth == 4

    def test_degenerate_trees(self):
        from repro.binding.hierarchy import build_agent_tree

        calls = []

        def spawn(parent, level, index):
            calls.append((parent, level, index))
            from repro.naming.binding import Binding as B
            from repro.naming.loid import LOID
            from repro.net.address import ObjectAddress, ObjectAddressElement

            return B(
                LOID.for_instance(60, len(calls)),
                ObjectAddress.single(ObjectAddressElement.sim(len(calls), 1)),
            )

        tree = build_agent_tree(spawn, leaf_count=1, fanout=4)
        assert tree.agent_count == 1
        with pytest.raises(ValueError):
            build_agent_tree(spawn, leaf_count=0, fanout=2)
        with pytest.raises(ValueError):
            build_agent_tree(spawn, leaf_count=2, fanout=0)


class TestResolverDirect:
    def test_client_resolution_via_resolver(self, fresh_legion):
        from repro.binding.resolver import resolve_loid
        from repro.security.environment import CallEnvironment

        system, cls = fresh_legion
        binding = system.call(cls.loid, "Create", {})
        client = system.new_client("resolver-test")
        client.runtime.cache.clear()
        client.runtime.seed_binding(
            system.services.core_bindings["LegionClass"]
        )
        env = CallEnvironment.originating(client.loid)
        fut = system.spawn(resolve_loid(client.runtime, binding.loid, env))
        resolved = system.kernel.run_until_complete(fut)
        assert resolved.address == binding.address
        # Both the class binding and the target landed in the cache.
        assert client.runtime.cache.lookup(cls.loid, system.kernel.now)
        assert client.runtime.cache.lookup(binding.loid, system.kernel.now)

    def test_resolver_walks_class_chain(self, fresh_legion):
        from repro.binding.resolver import locate_class_binding
        from repro.security.environment import CallEnvironment

        system, cls = fresh_legion
        sub = system.call(cls.loid, "Derive", "ResolverSub", {})
        client = system.new_client("resolver-chain")
        client.runtime.cache.clear()
        client.runtime.seed_binding(
            system.services.core_bindings["LegionClass"]
        )
        env = CallEnvironment.originating(client.loid)
        fut = system.spawn(
            locate_class_binding(client.runtime, sub.loid, env)
        )
        resolved = system.kernel.run_until_complete(fut)
        assert resolved.loid == sub.loid
