"""Tests for workload generators and the sample applications."""

import numpy as np
import pytest

from repro.errors import LegionError
from repro.workloads.apps import KVStoreImpl, WorkerImpl
from repro.workloads.generators import LocalityMix, TrafficDriver, ZipfPopularity


class TestZipfPopularity:
    def test_validation(self):
        with pytest.raises(LegionError):
            ZipfPopularity(0)
        with pytest.raises(LegionError):
            ZipfPopularity(5, s=-1)

    def test_probabilities_sum_to_one(self):
        zipf = ZipfPopularity(10, s=1.0)
        total = sum(zipf.probability(r) for r in range(10))
        assert total == pytest.approx(1.0)

    def test_rank_zero_most_popular(self):
        zipf = ZipfPopularity(10, s=1.2, rng=np.random.default_rng(0))
        samples = zipf.sample_many(20_000)
        counts = np.bincount(samples, minlength=10)
        assert counts[0] == counts.max()
        assert counts.argsort()[::-1][0] == 0

    def test_uniform_when_s_zero(self):
        zipf = ZipfPopularity(4, s=0.0, rng=np.random.default_rng(0))
        samples = zipf.sample_many(40_000)
        counts = np.bincount(samples, minlength=4) / 40_000
        assert np.allclose(counts, 0.25, atol=0.02)

    def test_sample_in_range(self):
        zipf = ZipfPopularity(3, rng=np.random.default_rng(1))
        assert all(0 <= zipf.sample() < 3 for _ in range(100))

    def test_empirical_matches_theoretical(self):
        zipf = ZipfPopularity(5, s=1.0, rng=np.random.default_rng(2))
        samples = zipf.sample_many(50_000)
        freq = np.bincount(samples, minlength=5) / 50_000
        theory = np.array([zipf.probability(r) for r in range(5)])
        assert np.allclose(freq, theory, atol=0.02)


class TestLocalityMix:
    def targets(self):
        from repro.naming.loid import LOID

        return {
            "a": [LOID.for_instance(10, 1), LOID.for_instance(10, 2)],
            "b": [LOID.for_instance(10, 3)],
        }

    def test_validation(self):
        import random

        with pytest.raises(LegionError):
            LocalityMix(self.targets(), 1.5, random.Random(0))

    def test_full_locality(self):
        import random

        mix = LocalityMix(self.targets(), 1.0, random.Random(0))
        local = set(self.targets()["a"])
        assert all(mix.choose("a") in local for _ in range(50))

    def test_zero_locality_goes_remote(self):
        import random

        mix = LocalityMix(self.targets(), 0.0, random.Random(0))
        remote = set(self.targets()["b"])
        assert all(mix.choose("a") in remote for _ in range(50))

    def test_fraction_roughly_respected(self):
        import random

        mix = LocalityMix(self.targets(), 0.8, random.Random(0))
        local = set(self.targets()["a"])
        hits = sum(mix.choose("a") in local for _ in range(2000))
        assert 0.75 < hits / 2000 < 0.85

    def test_unknown_site_falls_back_to_any(self):
        import random

        mix = LocalityMix(self.targets(), 0.9, random.Random(0))
        pick = mix.choose("nowhere")
        assert pick in set(self.targets()["a"]) | set(self.targets()["b"])


class TestTrafficDriver:
    def test_all_calls_counted(self, fresh_legion):
        system, cls = fresh_legion
        target = system.call(cls.loid, "Create", {})
        clients = [system.new_client(f"t{i}") for i in range(2)]
        driver = TrafficDriver(
            system.kernel,
            clients,
            choose_target=lambda _c: target.loid,
            method="Increment",
            args=(1,),
            calls_per_client=5,
            think_time=1.0,
        )
        stats = system.kernel.run_until_complete(driver.start())
        assert stats.calls_issued == 10
        assert stats.success_rate == 1.0
        assert system.call(target.loid, "Get") == 10

    def test_failures_recorded_not_raised(self, fresh_legion):
        system, cls = fresh_legion
        target = system.call(cls.loid, "Create", {})
        driver = TrafficDriver(
            system.kernel,
            [system.new_client("t")],
            choose_target=lambda _c: target.loid,
            method="NoSuchMethod",
            calls_per_client=3,
            think_time=0.0,
        )
        stats = system.kernel.run_until_complete(driver.start())
        assert stats.calls_failed == 3
        assert stats.success_rate == 0.0
        assert stats.errors


class TestApps:
    def test_counter_state_and_reset(self, fresh_legion):
        system, cls = fresh_legion
        c = system.call(cls.loid, "Create", {"init": {"start": 10}})
        assert system.call(c.loid, "Increment", 5) == 15
        system.call(c.loid, "Reset")
        assert system.call(c.loid, "Get") == 0

    def test_kv_store_full_protocol(self, fresh_legion):
        system, _cls = fresh_legion
        kv_cls = system.create_class("KV3", factory=KVStoreImpl)
        kv = system.call(kv_cls.loid, "Create", {})
        system.call(kv.loid, "Put", "alpha", 1)
        system.call(kv.loid, "Put", "beta", [1, 2])
        assert system.call(kv.loid, "Get", "alpha") == 1
        assert system.call(kv.loid, "Has", "beta")
        assert system.call(kv.loid, "Keys") == ["alpha", "beta"]
        assert system.call(kv.loid, "Delete", "alpha") == 1
        assert system.call(kv.loid, "Size") == 1

    def test_kv_store_survives_migration(self, fresh_legion):
        system, _cls = fresh_legion
        kv_cls = system.create_class("KV4", factory=KVStoreImpl)
        kv = system.call(kv_cls.loid, "Create", {})
        system.call(kv.loid, "Put", "k", "v")
        row = system.call(kv_cls.loid, "GetRow", kv.loid)
        source = row.current_magistrates[0]
        target = [
            m.loid for m in system.magistrates.values() if m.loid != source
        ][0]
        system.call(source, "Move", kv.loid, target)
        assert system.call(kv.loid, "Get", "k") == "v"

    def test_worker_consumes_simulated_time(self, fresh_legion):
        system, _cls = fresh_legion
        w_cls = system.create_class("Worker", factory=WorkerImpl)
        w = system.call(w_cls.loid, "Create", {"init": {"speed": 2.0}})
        t0 = system.kernel.now
        duration = system.call(w.loid, "Compute", 100.0)
        assert duration == pytest.approx(50.0)
        assert system.kernel.now - t0 >= 50.0
        assert system.call(w.loid, "Completed") == 1
